package fault

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// naiveOptions strips every acceleration: the oracle runs the plain
// hitting-set branching, which is the reference the optimized configuration
// must agree with exactly.
var naiveOptions = Options{DisablePruning: true, DisableMemo: true, DisableWitnessReuse: true}

// TestDifferentialOracleAgainstNaive is the PR's correctness lock: on
// hundreds of random (graph, stretch, budget) instances in both modes, the
// fully accelerated oracle and the ablated naive oracle must return the
// same decision for every query, and every returned witness must actually
// witness (checked by a third, naive oracle revalidation). Witness reuse,
// memoization, pruning, and the packing seed all preserve exactness iff
// this holds.
func TestDifferentialOracleAgainstNaive(t *testing.T) {
	instances := 300
	if testing.Short() {
		instances = 60
	}
	rng := rand.New(rand.NewSource(20260726))
	for inst := 0; inst < instances; inst++ {
		n := 6 + rng.Intn(9)           // 6..14 vertices
		extra := rng.Intn(2 * n)       // sparse to fairly dense
		stretch := 1 + 2*rng.Float64() // 1..3
		budget := rng.Intn(4)          // 0..3
		mode := Vertices
		if inst%2 == 1 {
			mode = Edges
		}
		g := randomConnectedGraph(rng, n, extra)

		opt, err := NewOracle(g, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewOracle(g, mode, naiveOptions)
		if err != nil {
			t.Fatal(err)
		}

		// Query every edge of the graph on the same shared oracles, so the
		// witness cache and memo table carry state across queries exactly as
		// they do inside the greedy.
		for _, e := range g.EdgesByWeight() {
			bound := stretch * e.Weight
			wOpt, foundOpt, err := opt.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatalf("instance %d edge %d: optimized: %v", inst, e.ID, err)
			}
			_, foundNaive, err := naive.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatalf("instance %d edge %d: naive: %v", inst, e.ID, err)
			}
			if foundOpt != foundNaive {
				t.Fatalf("instance %d (mode=%v n=%d m=%d stretch=%v budget=%d) edge (%d,%d): optimized=%v naive=%v",
					inst, mode, n, g.NumEdges(), stretch, budget, e.U, e.V, foundOpt, foundNaive)
			}
			if foundOpt {
				if len(wOpt) > budget {
					t.Fatalf("instance %d edge %d: witness %v exceeds budget %d", inst, e.ID, wOpt, budget)
				}
				// A valid witness must stretch the pair on its own: rerun the
				// query with budget 0 after applying the witness via a naive
				// oracle's forbidden machinery — cheapest done by checking
				// that the witness is confirmed as "extendable by 0 faults".
				if !witnessHolds(t, g, mode, e.U, e.V, bound, wOpt) {
					t.Fatalf("instance %d edge %d: returned witness %v does not stretch the pair", inst, e.ID, wOpt)
				}
			}
		}
	}
}

// witnessHolds checks dist_{g\w}(u,v) > bound by masking the witness
// elements in a direct shortest-path query — an implementation-independent
// validation of the witness the optimized oracle returned.
func witnessHolds(t *testing.T, g *graph.Graph, mode Mode, u, v int, bound float64, w []int) bool {
	t.Helper()
	opts := sssp.Options{}
	if mode == Vertices {
		opts.ForbiddenVertices = bitset.FromSlice(g.NumVertices(), w)
		if opts.ForbiddenVertices.Contains(u) || opts.ForbiddenVertices.Contains(v) {
			return false
		}
	} else {
		opts.ForbiddenEdges = bitset.FromSlice(g.NumEdges(), w)
	}
	return sssp.Dist(g, u, v, opts) > bound
}
