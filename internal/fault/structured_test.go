package fault

import (
	"math/rand"
	"testing"
)

// TestStructuralSeedsAnswerHubQueries checks the structure-aware half of
// the witness cache: on the two-cliques bottleneck graph, the very FIRST
// query — with an empty cache — should already be answered by a structural
// seed, because the cut vertex is the highest-degree internal vertex of
// every cross-pair short path.
func TestStructuralSeedsAnswerHubQueries(t *testing.T) {
	const side = 5
	g := newTwoCliquesGraph(side)
	c := 2 * side

	o, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, found, err := o.FindFaultSet(0, side, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(w) != 1 || w[0] != c {
		t.Fatalf("first query: witness %v found=%v, want [%d]", w, found, c)
	}
	if o.WitnessSeedHits() != 1 {
		t.Fatalf("first query on an empty cache should be a seed hit, got seedHits=%d seedTries=%d",
			o.WitnessSeedHits(), o.WitnessSeedTries())
	}
	if o.WitnessHits() != 1 {
		t.Fatalf("seed hits must count as witness hits, got %d", o.WitnessHits())
	}
	// The seed graduated into the cache: the next cross-pair query must hit
	// the cached entry without a new seed trial succeeding.
	if _, found, err = o.FindFaultSet(1, side+1, 10, 1); err != nil || !found {
		t.Fatalf("second query: found=%v err=%v", found, err)
	}
	if o.WitnessHits() != 2 {
		t.Fatalf("second query should hit the graduated cache entry, hits=%d", o.WitnessHits())
	}
	if o.WitnessSeedHits() != 1 {
		t.Fatalf("second query should not need a fresh seed, seedHits=%d", o.WitnessSeedHits())
	}
}

// TestBlindWitnessCacheAblation pins the ablation flag: blind mode performs
// no seed trials and keeps at most the old 4-entry capacity, while both
// configurations return identical decisions on a shared query stream.
func TestBlindWitnessCacheAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomConnectedGraph(rng, 14, 30)
	structured, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := NewOracle(g, Vertices, Options{BlindWitnessCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.EdgesByWeight() {
		_, f1, err := structured.FindFaultSet(e.U, e.V, 1.4*e.Weight, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, f2, err := blind.FindFaultSet(e.U, e.V, 1.4*e.Weight, 2)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("edge (%d,%d): structured=%v blind=%v", e.U, e.V, f1, f2)
		}
	}
	if blind.WitnessSeedTries() != 0 || blind.WitnessSeedHits() != 0 {
		t.Fatalf("blind cache ran %d seed trials", blind.WitnessSeedTries())
	}
	if len(blind.witnesses) > witnessCacheSizeBlind {
		t.Fatalf("blind cache holds %d entries, cap %d", len(blind.witnesses), witnessCacheSizeBlind)
	}
	if len(structured.witnesses) > witnessCacheSizeStructured {
		t.Fatalf("structured cache holds %d entries, cap %d", len(structured.witnesses), witnessCacheSizeStructured)
	}
}

// TestWitnessCacheSizeOption pins the capacity override in both modes.
func TestWitnessCacheSizeOption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomConnectedGraph(rng, 16, 40)
	for _, blind := range []bool{false, true} {
		o, err := NewOracle(g, Vertices, Options{BlindWitnessCache: blind, WitnessCacheSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.EdgesByWeight() {
			if _, _, err := o.FindFaultSet(e.U, e.V, 1.3*e.Weight, 2); err != nil {
				t.Fatal(err)
			}
		}
		if len(o.witnesses) > 2 {
			t.Fatalf("blind=%v: cache holds %d entries over explicit cap 2", blind, len(o.witnesses))
		}
	}
}

// TestScoredCacheOrdering checks the scoring mechanics directly: a repeat
// hitter must stay ahead of decayed non-hitters, and eviction must drop the
// lowest-scoring tail entry, not the least recently inserted.
func TestScoredCacheOrdering(t *testing.T) {
	g := newTwoCliquesGraph(3)
	o, err := NewOracle(g, Vertices, Options{WitnessCacheSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Hand the cache one entry and credit it repeatedly.
	o.remember([]int{6})
	for i := 0; i < 5; i++ {
		o.creditEntry(0)
	}
	hot := o.witnesses[0].score
	o.remember([]int{1})
	o.remember([]int{2})
	if o.witnesses[0].set[0] != 6 {
		t.Fatalf("repeat hitter displaced by fresh entries: front=%v", o.witnesses[0].set)
	}
	// Fresh entries insert ahead of equal-or-lower scores (newest first
	// among ties), so the cache now reads [6, 2, 1].
	if o.witnesses[1].set[0] != 2 || o.witnesses[2].set[0] != 1 {
		t.Fatalf("tie order wrong: %v", o.witnesses)
	}
	// At capacity, a new entry evicts the tail (lowest score), keeping the
	// proven hitter.
	o.remember([]int{3})
	if len(o.witnesses) != 3 {
		t.Fatalf("cache over capacity: %d", len(o.witnesses))
	}
	if o.witnesses[0].set[0] != 6 || o.witnesses[0].score != hot {
		t.Fatalf("eviction touched the hot entry: %v", o.witnesses)
	}
	for _, e := range o.witnesses {
		if e.set[0] == 1 {
			t.Fatalf("eviction kept the tail instead of dropping it: %v", o.witnesses)
		}
	}
}

// TestStructuredCacheHitRateImprovement is the measurement behind the PR's
// acceptance bar: on random-graph greedy-style query streams (the ~10%
// baseline regime from BENCH_PR3), the structured cache's hit rate must
// beat the blind cache's. Aggregated over a fixed instance set so the
// comparison is deterministic.
func TestStructuredCacheHitRateImprovement(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	var sHits, sMisses, bHits, bMisses int64
	for inst := 0; inst < 12; inst++ {
		n := 20 + rng.Intn(10)
		g := randomConnectedGraph(rng, n, 3*n)
		mode := Vertices
		if inst%2 == 1 {
			mode = Edges
		}
		s, err := NewOracle(g, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOracle(g, mode, Options{BlindWitnessCache: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.EdgesByWeight() {
			if _, _, err := s.FindFaultSet(e.U, e.V, 1.5*e.Weight, 2); err != nil {
				t.Fatal(err)
			}
			if _, _, err := b.FindFaultSet(e.U, e.V, 1.5*e.Weight, 2); err != nil {
				t.Fatal(err)
			}
		}
		sHits += s.WitnessHits()
		sMisses += s.WitnessMisses()
		bHits += b.WitnessHits()
		bMisses += b.WitnessMisses()
	}
	rate := func(h, m int64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	sRate, bRate := rate(sHits, sMisses), rate(bHits, bMisses)
	t.Logf("witness cache hit rate: structured %.1f%% (%d/%d) vs blind %.1f%% (%d/%d)",
		100*sRate, sHits, sHits+sMisses, 100*bRate, bHits, bHits+bMisses)
	if sRate <= bRate {
		t.Fatalf("structured cache hit rate %.3f did not beat blind %.3f", sRate, bRate)
	}
}
