// Package fault implements the decision oracle at the heart of the paper's
// FT greedy algorithm (Algorithm 1): given the spanner built so far H, an
// edge (u,v) and a budget f, does there exist a fault set F (vertices for
// VFT, edges for EFT) with |F| <= f such that dist_{H\F}(u,v) > k·w(u,v)?
//
// The oracle answers exactly, by the classic hitting-set branching: find any
// u-v path of weight <= bound avoiding the faults chosen so far; if none
// exists the chosen faults are a witness; otherwise every witness must hit
// that path, so branch on its internal vertices (VFT) or edges (EFT). The
// running time is exponential in f with base bounded by the path length —
// exactly the "naive implementation is exponential in f" the paper's open
// question refers to; experiment E7 measures it.
//
// Two optional accelerations preserve exactness:
//
//   - pruning: if more than f pairwise internally-disjoint short paths
//     survive, no budget-f fault set can hit them all, so the branch fails
//     without recursing (greedy path packing gives the disjoint paths);
//   - memoization: fault sets are canonicalized so permutations of one set
//     are explored once.
package fault

import (
	"encoding/binary"
	"fmt"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// Mode selects the kind of faults to search over.
type Mode int

const (
	// Vertices: fault sets are vertices, never including the endpoints of
	// the query pair (matching Definition 2's VFT and Definition 3's
	// requirement v ∉ e).
	Vertices Mode = iota + 1
	// Edges: fault sets are edges of the searched graph.
	Edges
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Vertices:
		return "vertex"
	case Edges:
		return "edge"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes the oracle. The zero value enables both accelerations.
type Options struct {
	// DisablePruning turns off the disjoint-path packing bound.
	DisablePruning bool
	// DisableMemo turns off fault-set memoization.
	DisableMemo bool
	// EdgeCapacity sizes the edge fault mask. The searched graph may grow
	// (the greedy adds edges between queries); set this to the maximum edge
	// ID it will ever hold. Zero means the graph's current edge count.
	EdgeCapacity int
}

// Oracle searches for fault sets on a fixed (but growable) graph. It reuses
// all internal state across queries; it is not safe for concurrent use.
type Oracle struct {
	g      *graph.Graph
	mode   Mode
	opts   Options
	solver *sssp.Solver

	forbiddenV *bitset.Set
	forbiddenE *bitset.Set

	// Scratch for the disjoint-path pruning bound.
	packV *bitset.Set
	packE *bitset.Set

	memo    map[string]struct{}
	memoKey []byte
	chosen  []int // currently chosen fault elements, for canonical keys

	calls     int64
	dijkstras int64
}

// NewOracle returns an oracle over g in the given mode. The graph may gain
// edges between queries (the FT greedy relies on this) as long as the total
// stays within Options.EdgeCapacity.
func NewOracle(g *graph.Graph, mode Mode, opts Options) (*Oracle, error) {
	if mode != Vertices && mode != Edges {
		return nil, fmt.Errorf("fault: invalid mode %d", int(mode))
	}
	edgeCap := opts.EdgeCapacity
	if edgeCap <= 0 {
		edgeCap = g.NumEdges()
	}
	n := g.NumVertices()
	return &Oracle{
		g:          g,
		mode:       mode,
		opts:       opts,
		solver:     sssp.NewSolver(n),
		forbiddenV: bitset.New(n),
		forbiddenE: bitset.New(edgeCap),
		packV:      bitset.New(n),
		packE:      bitset.New(edgeCap),
		memo:       make(map[string]struct{}),
	}, nil
}

// Mode returns the oracle's fault mode.
func (o *Oracle) Mode() Mode { return o.mode }

// Calls returns the number of oracle queries served so far.
func (o *Oracle) Calls() int64 { return o.calls }

// Dijkstras returns the number of shortest-path computations performed, the
// honest cost unit for experiment E7.
func (o *Oracle) Dijkstras() int64 { return o.dijkstras }

// FindFaultSet searches for a fault set F with |F| <= budget such that
// dist_{g\F}(u, v) > bound. It returns the witness (vertex IDs in Vertices
// mode, edge IDs in Edges mode; possibly empty) and whether one exists.
func (o *Oracle) FindFaultSet(u, v int, bound float64, budget int) ([]int, bool, error) {
	if u < 0 || u >= o.g.NumVertices() || v < 0 || v >= o.g.NumVertices() {
		return nil, false, fmt.Errorf("fault: query pair (%d,%d) out of range", u, v)
	}
	if u == v {
		return nil, false, fmt.Errorf("fault: query endpoints coincide (%d)", u)
	}
	if budget < 0 {
		return nil, false, fmt.Errorf("fault: negative budget %d", budget)
	}
	if o.g.NumEdges() > o.forbiddenE.Cap() {
		return nil, false, fmt.Errorf("fault: graph grew past EdgeCapacity %d", o.forbiddenE.Cap())
	}
	o.calls++
	o.forbiddenV.Clear()
	o.forbiddenE.Clear()
	o.chosen = o.chosen[:0]
	for k := range o.memo {
		delete(o.memo, k)
	}
	if !o.search(u, v, bound, budget) {
		return nil, false, nil
	}
	witness := append([]int(nil), o.chosen...)
	return witness, true, nil
}

// search reports whether the currently chosen faults can be extended by at
// most budget more elements into a witness. On success the chosen faults
// (o.chosen and the forbidden sets) hold the witness.
func (o *Oracle) search(u, v int, bound float64, budget int) bool {
	o.dijkstras++
	err := o.solver.RunTarget(o.g, u, v, sssp.Options{
		ForbiddenVertices: o.forbiddenV,
		ForbiddenEdges:    o.forbiddenE,
		Bound:             bound,
	})
	if err != nil {
		// Unreachable: endpoints are validated and never forbidden.
		panic(err)
	}
	if !o.solver.Reached(v) {
		return true // dist > bound already; chosen faults are a witness
	}
	if budget == 0 {
		return false
	}

	// Every witness must hit this short path; branch on its elements. The
	// path must be extracted before any further solver use (the pruning
	// bound below reuses the solver).
	var candidates []int
	if o.mode == Vertices {
		pathVerts := o.solver.PathTo(o.g, v)
		if len(pathVerts) <= 2 {
			return false // direct edge: no internal vertex can cut it
		}
		candidates = append(candidates, pathVerts[1:len(pathVerts)-1]...)
	} else {
		candidates = append(candidates, o.solver.PathEdgesTo(o.g, v)...)
	}

	if !o.opts.DisablePruning && o.disjointPathsExceed(u, v, bound, budget) {
		return false
	}

	for _, x := range candidates {
		o.push(x)
		skip := false
		if !o.opts.DisableMemo {
			key := o.canonicalKey()
			if _, seen := o.memo[key]; seen {
				skip = true
			} else {
				o.memo[key] = struct{}{}
			}
		}
		if !skip && o.search(u, v, bound, budget-1) {
			return true
		}
		o.pop(x)
	}
	return false
}

// disjointPathsExceed greedily packs internally-disjoint (VFT) or
// edge-disjoint (EFT) u-v paths of weight <= bound avoiding the current
// faults. If the packing exceeds budget, every witness would need more than
// budget faults, so the current branch is hopeless.
func (o *Oracle) disjointPathsExceed(u, v int, bound float64, budget int) bool {
	return o.packPaths(u, v, bound, budget+1) > budget
}

// CountDisjointShortPaths greedily packs pairwise internally-vertex-disjoint
// (Vertices mode) or edge-disjoint (Edges mode) u-v paths of weight at most
// bound, stopping at limit. A count of c certifies that no fault set of size
// < c can stretch (u,v) beyond bound — the soundness core of the
// polynomial-time conservative greedy (core.GreedyConservative). A direct
// u-v edge within the bound counts as limit in Vertices mode (it cannot be
// vertex-faulted at all).
func (o *Oracle) CountDisjointShortPaths(u, v int, bound float64, limit int) (int, error) {
	if u < 0 || u >= o.g.NumVertices() || v < 0 || v >= o.g.NumVertices() || u == v {
		return 0, fmt.Errorf("fault: invalid path-packing pair (%d,%d)", u, v)
	}
	if limit < 0 {
		return 0, fmt.Errorf("fault: negative packing limit %d", limit)
	}
	if o.g.NumEdges() > o.forbiddenE.Cap() {
		return 0, fmt.Errorf("fault: graph grew past EdgeCapacity %d", o.forbiddenE.Cap())
	}
	o.forbiddenV.Clear()
	o.forbiddenE.Clear()
	return o.packPaths(u, v, bound, limit), nil
}

// packPaths packs disjoint short paths starting from the current forbidden
// sets, returning the packing size capped at limit.
func (o *Oracle) packPaths(u, v int, bound float64, limit int) int {
	o.packV.CopyFrom(o.forbiddenV)
	o.packE.CopyFrom(o.forbiddenE)
	count := 0
	for count < limit {
		o.dijkstras++
		err := o.solver.RunTarget(o.g, u, v, sssp.Options{
			ForbiddenVertices: o.packV,
			ForbiddenEdges:    o.packE,
			Bound:             bound,
		})
		if err != nil {
			panic(err) // unreachable: endpoints validated, never forbidden
		}
		if !o.solver.Reached(v) {
			return count
		}
		count++
		if o.mode == Vertices {
			verts := o.solver.PathTo(o.g, v)
			if len(verts) <= 2 {
				// A direct u-v edge cannot be hit by vertex faults at all:
				// it alone defeats any budget, so report the cap.
				return limit
			}
			for _, x := range verts[1 : len(verts)-1] {
				o.packV.Add(x)
			}
		} else {
			for _, e := range o.solver.PathEdgesTo(o.g, v) {
				o.packE.Add(e)
			}
		}
	}
	return count
}

func (o *Oracle) push(x int) {
	if o.mode == Vertices {
		o.forbiddenV.Add(x)
	} else {
		o.forbiddenE.Add(x)
	}
	o.chosen = append(o.chosen, x)
}

func (o *Oracle) pop(x int) {
	if o.mode == Vertices {
		o.forbiddenV.Remove(x)
	} else {
		o.forbiddenE.Remove(x)
	}
	o.chosen = o.chosen[:len(o.chosen)-1]
}

// canonicalKey encodes the chosen fault set order-independently (sorted,
// varint-packed) so permutations of one set share a memo entry.
func (o *Oracle) canonicalKey() string {
	sorted := append([]int(nil), o.chosen...)
	insertionSort(sorted)
	o.memoKey = o.memoKey[:0]
	var buf [binary.MaxVarintLen64]byte
	for _, x := range sorted {
		n := binary.PutUvarint(buf[:], uint64(x))
		o.memoKey = append(o.memoKey, buf[:n]...)
	}
	return string(o.memoKey)
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
