// Package fault implements the decision oracle at the heart of the paper's
// FT greedy algorithm (Algorithm 1): given the spanner built so far H, an
// edge (u,v) and a budget f, does there exist a fault set F (vertices for
// VFT, edges for EFT) with |F| <= f such that dist_{H\F}(u,v) > k·w(u,v)?
//
// The oracle answers exactly, by the classic hitting-set branching: find any
// u-v path of weight <= bound avoiding the faults chosen so far; if none
// exists the chosen faults are a witness; otherwise every witness must hit
// that path, so branch on its internal vertices (VFT) or edges (EFT). The
// running time is exponential in f with base bounded by the path length —
// exactly the "naive implementation is exponential in f" the paper's open
// question refers to; experiment E7 measures it.
//
// Three optional accelerations preserve exactness:
//
//   - pruning: if more than f pairwise internally-disjoint short paths
//     survive, no budget-f fault set can hit them all, so the branch fails
//     without recursing (greedy path packing gives the disjoint paths);
//   - memoization: fault sets are hashed order-independently so
//     permutations of one set are explored once per query;
//   - witness reuse: the greedy scans edges in weight order, so fault sets
//     that witnessed recent kept edges often witness the next one too; each
//     is re-validated with a single bounded Dijkstra before the exponential
//     branching is attempted.
package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// constructions counts NewOracle calls process-wide. Incremental-engine
// tests and benchmarks read it to prove that non-fallback delta batches
// reuse the retained oracle instead of constructing a fresh one.
var constructions atomic.Int64

// Constructions returns the process-wide NewOracle call count.
func Constructions() int64 { return constructions.Load() }

// Mode selects the kind of faults to search over.
type Mode int

const (
	// Vertices: fault sets are vertices, never including the endpoints of
	// the query pair (matching Definition 2's VFT and Definition 3's
	// requirement v ∉ e).
	Vertices Mode = iota + 1
	// Edges: fault sets are edges of the searched graph.
	Edges
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Vertices:
		return "vertex"
	case Edges:
		return "edge"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes the oracle. The zero value enables every acceleration.
type Options struct {
	// DisablePruning turns off the disjoint-path packing bound.
	DisablePruning bool
	// DisableMemo turns off fault-set memoization.
	DisableMemo bool
	// DisableWitnessReuse turns off revalidation of recently found witness
	// fault sets across queries.
	DisableWitnessReuse bool
	// DisableBidi makes the refuting reachability tests use the
	// unidirectional bounded Dijkstra instead of the meet-in-the-middle
	// search (sssp.RunReachBidi). Path packing always stays unidirectional:
	// its counts feed the conservative greedy's decisions, which must not
	// depend on which within-bound paths the engine happens to return.
	DisableBidi bool
	// BlindWitnessCache reverts the witness cache to its original blind
	// behavior — pure recency order, no hit scoring, no structural seeding —
	// as the ablation baseline for the structure-aware cache. With
	// WitnessCacheSize zero it also reverts to the old 4-entry capacity.
	BlindWitnessCache bool
	// WitnessCacheSize overrides the witness cache capacity. Zero selects
	// the default (8 structured, 4 blind); the cache is consulted only when
	// the exponential branching is imminent, so each extra entry costs at
	// most one bounded Dijkstra per consulted query.
	WitnessCacheSize int
	// EdgeCapacity sizes the edge fault mask. The searched graph may grow
	// (the greedy adds edges between queries); set this to the maximum edge
	// ID it will ever hold. Zero means the graph's current edge count.
	EdgeCapacity int
	// ObserveQuery, if non-nil, receives the wall-clock latency of a sampled
	// subset of FindFaultSet queries (one in querySampleEvery, so the two
	// time.Now calls stay amortized well under the cost of a single bounded
	// Dijkstra). The greedy's worker oracles all carry the same options, so
	// the hook MUST be safe for concurrent use; ftserve feeds a concurrent
	// histogram. Hinted queries answered purely by witness revalidation are
	// not sampled — they are one Dijkstra by construction, and including
	// them would make the distribution bimodal in a way that tracks cache
	// luck, not search cost.
	ObserveQuery func(d time.Duration)
	// Chaos, if non-nil, is invoked at the top of every FindFaultSet — a
	// test-only fault-injection point that can panic to exercise the
	// caller's panic containment. Like ObserveQuery it must be safe for
	// concurrent use (every worker oracle carries the same options). Nil in
	// production.
	Chaos func()
}

// querySampleEvery is the ObserveQuery sampling stride: every n-th
// FindFaultSet call is timed.
const querySampleEvery = 8

// Witness cache tuning. The cache is consulted only after the packing bound
// has failed to refute the query, i.e. exactly when the exponential branching
// is imminent, and each trial (cached set or structural seed) costs one
// bounded reach-only Dijkstra — cheap insurance against branching.
const (
	// witnessCacheSizeBlind is the default capacity under BlindWitnessCache:
	// the original 4-entry recency LRU.
	witnessCacheSizeBlind = 4
	// witnessCacheSizeStructured is the default capacity of the scored
	// cache. Doubling the blind default is affordable because trials are
	// ordered by score, so the added tail entries are only reached when the
	// proven ones already failed.
	witnessCacheSizeStructured = 8
	// witnessDecay is the per-consult multiplicative score decay: entries
	// that stop hitting fade toward eviction while repeat hitters (cut
	// vertices, bottleneck edges) stay at the front.
	witnessDecay = 0.9
	// witnessSeedLimit bounds the structural seed singletons tried per
	// consulted query: candidate fault elements read off the current short
	// path's structure (high-degree internal vertices in Vertices mode,
	// min-endpoint-degree edges in Edges mode).
	witnessSeedLimit = 2
)

// memoMaxEntries bounds the generation-stamped memo table. The table is
// never wiped per query (generation stamps invalidate stale entries for
// free); this cap only stops a pathological build from accumulating
// unbounded memory, by re-allocating the map once it grows past the cap.
const memoMaxEntries = 1 << 20

// Oracle searches for fault sets on a fixed (but growable) graph. It reuses
// all internal state across queries; it is not safe for concurrent use.
type Oracle struct {
	g      *graph.Graph
	mode   Mode
	opts   Options
	solver *sssp.Solver

	forbiddenV *bitset.Set
	forbiddenE *bitset.Set

	// Scratch for the disjoint-path pruning bound.
	packV   *bitset.Set
	packE   *bitset.Set
	packBuf []int // path scratch for packPaths

	// Memoization of explored fault sets: an order-independent 64-bit hash
	// of the chosen set (XOR of per-element mixes, maintained incrementally
	// by push/pop) mapped to the generation that last explored it. Queries
	// bump gen instead of wiping the table, so stale entries cost nothing.
	memo       map[uint64]uint64
	memoGen    uint64
	chosen     []int // currently chosen fault elements
	chosenHash uint64

	// cand[d] is the branching-candidate scratch buffer for search depth d,
	// so the recursion allocates nothing after warm-up.
	cand [][]int

	// witnesses is the reuse cache. Structured mode (the default) keeps it
	// sorted by score descending — an exponentially decayed hit count, so
	// trial order and eviction track which fault sets actually keep
	// witnessing; BlindWitnessCache keeps it in pure recency order.
	witnesses []witnessEntry

	calls            int64
	dijkstras        int64
	witnessHits      int64
	witnessMisses    int64
	witnessSeedTries int64
	witnessSeedHits  int64
}

// witnessEntry is one cached witness fault set with its decayed hit score
// (unused in blind mode, where position encodes recency).
type witnessEntry struct {
	set   []int
	score float64
}

// NewOracle returns an oracle over g in the given mode. The graph may gain
// edges between queries (the FT greedy relies on this) as long as the total
// stays within Options.EdgeCapacity.
func NewOracle(g *graph.Graph, mode Mode, opts Options) (*Oracle, error) {
	if mode != Vertices && mode != Edges {
		return nil, fmt.Errorf("fault: invalid mode %d", int(mode))
	}
	edgeCap := opts.EdgeCapacity
	if edgeCap <= 0 {
		edgeCap = g.NumEdges()
	}
	constructions.Add(1)
	n := g.NumVertices()
	return &Oracle{
		g:          g,
		mode:       mode,
		opts:       opts,
		solver:     sssp.NewSolver(n),
		forbiddenV: bitset.New(n),
		forbiddenE: bitset.New(edgeCap),
		packV:      bitset.New(n),
		packE:      bitset.New(edgeCap),
		memo:       make(map[uint64]uint64),
	}, nil
}

// Mode returns the oracle's fault mode.
func (o *Oracle) Mode() Mode { return o.mode }

// Rebind points the oracle at a different graph on the same vertex set,
// keeping all accumulated state (memo table, witness cache, counters). The
// parallel greedy uses it to re-aim per-worker oracles at each batch's fresh
// spanner snapshot instead of rebuilding them: the generation-stamped memo
// never serves stale entries across queries, and cached witnesses are only
// ever used after revalidation against the current graph, so both carry
// over safely.
func (o *Oracle) Rebind(g *graph.Graph) error {
	if g.NumVertices() != o.forbiddenV.Cap() {
		return fmt.Errorf("fault: rebind graph has %d vertices, oracle built for %d",
			g.NumVertices(), o.forbiddenV.Cap())
	}
	if g.NumEdges() > o.forbiddenE.Cap() {
		return fmt.Errorf("fault: rebind graph has %d edges, over EdgeCapacity %d",
			g.NumEdges(), o.forbiddenE.Cap())
	}
	o.g = g
	return nil
}

// Rewind is Rebind for long-lived oracles whose graph shrinks and regrows
// between query runs: it re-aims the oracle at g — typically the same graph
// after a Graph.Truncate and before a fresh run of appends — growing the
// vertex structures when g gained vertices and the edge masks up to
// edgeCapacity (the maximum edge ID the graph will hold before the next
// Rewind; zero keeps the current capacity).
//
// All accumulated state carries over, exactly as with Rebind: the memo table
// is generation-stamped per query so entries from earlier graph states can
// never serve, and cached witnesses are only used after revalidation against
// the current graph — a stale witness whose element IDs now mean different
// edges either fails its one-Dijkstra recheck or proves a genuine fault set
// of the current graph, which is all the caller ever relies on. The
// incremental spanner engine uses this to carry one oracle across delta
// batches instead of rebuilding it per batch.
func (o *Oracle) Rewind(g *graph.Graph, edgeCapacity int) error {
	if n := g.NumVertices(); n > o.forbiddenV.Cap() {
		o.forbiddenV = bitset.New(n)
		o.packV = bitset.New(n)
		o.solver.Ensure(n)
	}
	if edgeCapacity < g.NumEdges() {
		edgeCapacity = g.NumEdges()
	}
	if edgeCapacity > o.forbiddenE.Cap() {
		o.forbiddenE = bitset.New(edgeCapacity)
		o.packE = bitset.New(edgeCapacity)
	}
	o.g = g
	return nil
}

// Calls returns the number of oracle queries served so far.
func (o *Oracle) Calls() int64 { return o.calls }

// Dijkstras returns the number of shortest-path computations performed, the
// honest cost unit for experiment E7. Witness revalidation Dijkstras are
// included.
func (o *Oracle) Dijkstras() int64 { return o.dijkstras }

// WitnessHits returns the number of queries answered by the witness cache
// machinery — a revalidated cached fault set or a structural seed — instead
// of branching.
func (o *Oracle) WitnessHits() int64 { return o.witnessHits }

// WitnessMisses returns the number of queries where the witness cache was
// consulted but branching still had to run. Queries resolved before the
// cache applies (no short path, zero budget, or refuted by the packing
// bound) count neither as hits nor as misses.
func (o *Oracle) WitnessMisses() int64 { return o.witnessMisses }

// WitnessSeedTries returns the number of structural seed singletons tested
// (each one bounded reach-only Dijkstra).
func (o *Oracle) WitnessSeedTries() int64 { return o.witnessSeedTries }

// WitnessSeedHits returns the number of queries answered by a structural
// seed — a subset of WitnessHits.
func (o *Oracle) WitnessSeedHits() int64 { return o.witnessSeedHits }

// witnessCap returns the effective witness cache capacity.
func (o *Oracle) witnessCap() int {
	if o.opts.WitnessCacheSize > 0 {
		return o.opts.WitnessCacheSize
	}
	if o.opts.BlindWitnessCache {
		return witnessCacheSizeBlind
	}
	return witnessCacheSizeStructured
}

// FindFaultSet searches for a fault set F with |F| <= budget such that
// dist_{g\F}(u, v) > bound. It returns the witness (vertex IDs in Vertices
// mode, edge IDs in Edges mode; possibly empty) and whether one exists. The
// returned slice is the caller's to keep or mutate.
func (o *Oracle) FindFaultSet(u, v int, bound float64, budget int) ([]int, bool, error) {
	if u < 0 || u >= o.g.NumVertices() || v < 0 || v >= o.g.NumVertices() {
		return nil, false, fmt.Errorf("fault: query pair (%d,%d) out of range", u, v)
	}
	if u == v {
		return nil, false, fmt.Errorf("fault: query endpoints coincide (%d)", u)
	}
	if budget < 0 {
		return nil, false, fmt.Errorf("fault: negative budget %d", budget)
	}
	if o.g.NumEdges() > o.forbiddenE.Cap() {
		return nil, false, fmt.Errorf("fault: graph grew past EdgeCapacity %d", o.forbiddenE.Cap())
	}
	if o.opts.Chaos != nil {
		o.opts.Chaos()
	}
	o.calls++
	if o.opts.ObserveQuery != nil && o.calls%querySampleEvery == 0 {
		defer func(start time.Time) { o.opts.ObserveQuery(time.Since(start)) }(time.Now())
	}
	o.forbiddenV.Clear()
	o.forbiddenE.Clear()
	o.chosen = o.chosen[:0]
	o.chosenHash = 0
	o.memoGen++
	if len(o.memo) > memoMaxEntries {
		o.memo = make(map[uint64]uint64)
	}
	if !o.search(u, v, bound, budget, true) {
		return nil, false, nil
	}
	witness := append([]int(nil), o.chosen...)
	o.remember(witness)
	return witness, true, nil
}

// FindFaultSetHinted is FindFaultSet with a candidate witness tried first:
// if hint (non-empty, within budget) still witnesses on the current graph —
// one bounded reach-only test — a copy of it is returned directly, skipping
// the search; otherwise the full query runs. The pipelined greedy's
// re-speculation rounds pass each deferred edge's last known witness, so a
// witness that was merely blocked behind an unresolved earlier edge costs
// one Dijkstra to confirm instead of a fresh exponential search. A hinted
// answer counts as one oracle call either way.
func (o *Oracle) FindFaultSetHinted(u, v int, bound float64, budget int, hint []int) ([]int, bool, error) {
	if len(hint) == 0 || len(hint) > budget {
		return o.FindFaultSet(u, v, bound, budget)
	}
	ok, err := o.ValidateWitness(u, v, bound, hint)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return o.FindFaultSet(u, v, bound, budget)
	}
	o.calls++
	w := append([]int(nil), hint...)
	o.remember(w)
	return w, true, nil
}

// ValidateWitness checks with a single bounded reachability test whether w
// still witnesses dist_{g\w}(u,v) > bound on the oracle's CURRENT graph.
// This is how the parallel greedy salvages speculative answers computed
// against a stale spanner snapshot: a witness that survives one Dijkstra-
// priced revalidation proves the edge must still be kept, with no need to
// re-run the exponential search. Elements containing an endpoint (Vertices
// mode) report false without running; out-of-range elements are an error.
// The budget is not re-checked here — w came from a budget-respecting query.
func (o *Oracle) ValidateWitness(u, v int, bound float64, w []int) (bool, error) {
	if u < 0 || u >= o.g.NumVertices() || v < 0 || v >= o.g.NumVertices() || u == v {
		return false, fmt.Errorf("fault: invalid witness-validation pair (%d,%d)", u, v)
	}
	if o.g.NumEdges() > o.forbiddenE.Cap() {
		return false, fmt.Errorf("fault: graph grew past EdgeCapacity %d", o.forbiddenE.Cap())
	}
	o.forbiddenV.Clear()
	o.forbiddenE.Clear()
	for _, x := range w {
		if o.mode == Vertices {
			if x == u || x == v {
				return false, nil
			}
			if x < 0 || x >= o.forbiddenV.Cap() {
				return false, fmt.Errorf("fault: witness vertex %d out of range", x)
			}
			o.forbiddenV.Add(x)
		} else {
			if x < 0 || x >= o.forbiddenE.Cap() {
				return false, fmt.Errorf("fault: witness edge %d out of range", x)
			}
			o.forbiddenE.Add(x)
		}
	}
	return !o.runReach(u, v, bound, o.forbiddenV, o.forbiddenE, false), nil
}

// NoteWitness offers an externally discovered witness fault set to the
// reuse LRU (a no-op under DisableWitnessReuse). The parallel greedy feeds
// it the witnesses of speculatively committed edges so the live oracle's
// cache stays as warm as a sequential run's would be. The slice is copied.
func (o *Oracle) NoteWitness(w []int) { o.remember(w) }

// runReach runs one bounded reachability test against the oracle's graph
// with the given masks, dispatching to the bidirectional engine unless
// ablated, and reports whether v is within bound of u. With needPath the
// solver holds a valid <=bound u-v path for extraction on success; without
// it the bidirectional engine skips the path splice (sssp.Options.ReachOnly)
// — the witness revalidation and seed trials only consume the boolean.
func (o *Oracle) runReach(u, v int, bound float64, fv, fe *bitset.Set, needPath bool) bool {
	o.dijkstras++
	opts := sssp.Options{ForbiddenVertices: fv, ForbiddenEdges: fe, Bound: bound, ReachOnly: !needPath}
	var err error
	if o.opts.DisableBidi {
		err = o.solver.RunReach(o.g, u, v, opts)
	} else {
		err = o.solver.RunReachBidi(o.g, u, v, opts)
	}
	if err != nil {
		// Unreachable: endpoints are validated and never forbidden.
		panic(err)
	}
	return o.solver.Reached(v)
}

// search reports whether the currently chosen faults can be extended by at
// most budget more elements into a witness. On success the chosen faults
// (o.chosen and the forbidden sets) hold the witness. top is true for the
// query-level invocation, where witness reuse applies.
func (o *Oracle) search(u, v int, bound float64, budget int, top bool) bool {
	if !o.runReach(u, v, bound, o.forbiddenV, o.forbiddenE, true) {
		return true // dist > bound already; chosen faults are a witness
	}
	if budget == 0 {
		return false
	}

	// Every witness must hit this short path; branch on its elements. The
	// path must be extracted before any further solver use (pruning and
	// witness revalidation below reuse the solver). Extraction appends into
	// a per-depth scratch buffer, so steady-state queries allocate nothing.
	depth := len(o.chosen)
	for len(o.cand) <= depth {
		o.cand = append(o.cand, nil)
	}
	buf := o.cand[depth][:0]
	var candidates []int
	if o.mode == Vertices {
		buf = o.solver.AppendPathTo(o.g, v, buf)
		o.cand[depth] = buf
		if len(buf) <= 2 {
			return false // direct edge: no internal vertex can cut it
		}
		candidates = buf[1 : len(buf)-1]
	} else {
		buf = o.solver.AppendPathEdgesTo(o.g, v, buf)
		o.cand[depth] = buf
		candidates = buf
	}

	// The packing bound refutes the branch outright when more than budget
	// pairwise disjoint short detours survive. The path just extracted is
	// the packing's first member (the solver is deterministic, so an
	// unseeded packing would recompute exactly it), saving one Dijkstra.
	if !o.opts.DisablePruning && o.packPaths(u, v, bound, budget+1, candidates) > budget {
		return false
	}

	// Witness reuse: branching is now unavoidable, so one bounded Dijkstra
	// per plausible cached witness is cheap insurance. A cached set that
	// misses the current short path cannot be a witness (every witness hits
	// every short path), which filters most stale entries for free.
	if top && !o.opts.DisableWitnessReuse {
		if o.tryCachedWitnesses(u, v, bound, budget, candidates) {
			o.witnessHits++
			return true
		}
		o.witnessMisses++
	}

	for _, x := range candidates {
		o.push(x)
		skip := false
		if !o.opts.DisableMemo {
			if o.memo[o.chosenHash] == o.memoGen {
				skip = true
			} else {
				o.memo[o.chosenHash] = o.memoGen
			}
		}
		if !skip && o.search(u, v, bound, budget-1, false) {
			return true
		}
		o.pop(x)
	}
	return false
}

// tryCachedWitnesses revalidates cached witness fault sets against the
// current query — by decayed hit score in structured mode, by recency under
// BlindWitnessCache — and then, in structured mode, falls back to structural
// seed singletons read off the current short path. On success the winning
// set is loaded into o.chosen/forbidden state (the same contract as a
// successful search) and credited in the cache's hit history.
func (o *Oracle) tryCachedWitnesses(u, v int, bound float64, budget int, pathElems []int) bool {
	structured := !o.opts.BlindWitnessCache
	if structured {
		// Uniform decay preserves order, so no re-sort is needed; entries
		// that stop hitting drift toward the eviction tail.
		for i := range o.witnesses {
			o.witnesses[i].score *= witnessDecay
		}
	}
	for i := range o.witnesses {
		w := o.witnesses[i].set
		if len(w) == 0 || len(w) > budget {
			continue
		}
		if o.mode == Vertices && (contains(w, u) || contains(w, v)) {
			continue
		}
		if !intersects(w, pathElems) {
			continue
		}
		if o.loadIfWitness(u, v, bound, w) {
			o.creditEntry(i)
			return true
		}
	}
	if structured && budget > 0 && o.trySeeds(u, v, bound, pathElems) {
		return true
	}
	return false
}

// loadIfWitness forbids w and re-checks it with one bounded reach-only test.
// On success (w still a witness) the forbidden sets stay loaded and o.chosen
// holds a copy of w; on failure every element is unloaded again.
func (o *Oracle) loadIfWitness(u, v int, bound float64, w []int) bool {
	for _, x := range w {
		if o.mode == Vertices {
			o.forbiddenV.Add(x)
		} else {
			o.forbiddenE.Add(x)
		}
	}
	if !o.runReach(u, v, bound, o.forbiddenV, o.forbiddenE, false) {
		o.chosen = append(o.chosen[:0], w...)
		return true
	}
	for _, x := range w {
		if o.mode == Vertices {
			o.forbiddenV.Remove(x)
		} else {
			o.forbiddenE.Remove(x)
		}
	}
	return false
}

// creditEntry records a hit on cache entry i: blind mode moves it to the
// recency front, structured mode bumps its score and restores the ordering.
func (o *Oracle) creditEntry(i int) {
	if o.opts.BlindWitnessCache {
		if i != 0 {
			e := o.witnesses[i]
			copy(o.witnesses[1:i+1], o.witnesses[:i])
			o.witnesses[0] = e
		}
		return
	}
	o.witnesses[i].score++
	for i > 0 && o.witnesses[i].score > o.witnesses[i-1].score {
		o.witnesses[i], o.witnesses[i-1] = o.witnesses[i-1], o.witnesses[i]
		i--
	}
}

// seedCand is one structural seed candidate with its ranking key (higher
// tries first; path position breaks ties deterministically).
type seedCand struct{ x, key int }

// trySeeds tests up to witnessSeedLimit singleton fault sets derived from
// the current short path's structure: in Vertices mode the internal path
// vertices of highest degree (the hubs every detour tends to route through
// — the articulation points of the path neighborhood in the extreme case),
// in Edges mode the path edges whose endpoints have the lowest minimum
// degree (bridge-like edges with the fewest alternative routes). Each trial
// is one bounded reach-only Dijkstra; a hit is loaded exactly like a cached
// witness and then remembered by the caller, so proven seeds graduate into
// the scored cache.
func (o *Oracle) trySeeds(u, v int, bound float64, pathElems []int) bool {
	if len(pathElems) == 0 {
		return false
	}
	var cands [witnessSeedLimit]seedCand
	n := 0
	for _, x := range pathElems {
		var key int
		if o.mode == Vertices {
			key = o.g.Degree(x)
		} else {
			e := o.g.Edge(x)
			du, dv := o.g.Degree(e.U), o.g.Degree(e.V)
			if dv < du {
				du = dv
			}
			key = -du
		}
		pos := n
		for pos > 0 && key > cands[pos-1].key {
			pos--
		}
		if pos >= witnessSeedLimit {
			continue
		}
		if n < witnessSeedLimit {
			n++
		}
		for j := n - 1; j > pos; j-- {
			cands[j] = cands[j-1]
		}
		cands[pos] = seedCand{x: x, key: key}
	}
trial:
	for _, c := range cands[:n] {
		// A cached singleton {x} on the path was already revalidated above;
		// retrying it as a seed would waste the Dijkstra.
		for i := range o.witnesses {
			if w := o.witnesses[i].set; len(w) == 1 && w[0] == c.x {
				continue trial
			}
		}
		o.witnessSeedTries++
		if o.loadIfWitness(u, v, bound, []int{c.x}) {
			o.witnessSeedHits++
			return true
		}
	}
	return false
}

// remember inserts a found witness into the reuse cache, deduplicating
// against existing entries: blind mode front-inserts and evicts the recency
// tail, structured mode inserts by score (fresh entries start at 1, ahead of
// decayed non-hitters but behind proven repeat hitters) and evicts the
// lowest-scoring entry.
func (o *Oracle) remember(w []int) {
	if o.opts.DisableWitnessReuse || len(w) == 0 {
		return
	}
	for i := range o.witnesses {
		if equalSets(o.witnesses[i].set, w) {
			o.creditEntry(i)
			return
		}
	}
	entry := witnessEntry{set: append([]int(nil), w...), score: 1}
	max := o.witnessCap()
	if o.opts.BlindWitnessCache {
		if len(o.witnesses) < max {
			o.witnesses = append(o.witnesses, witnessEntry{})
		}
		copy(o.witnesses[1:], o.witnesses)
		o.witnesses[0] = entry
		return
	}
	if len(o.witnesses) >= max {
		o.witnesses = o.witnesses[:max-1]
	}
	pos := len(o.witnesses)
	for pos > 0 && entry.score >= o.witnesses[pos-1].score {
		pos--
	}
	o.witnesses = append(o.witnesses, witnessEntry{})
	copy(o.witnesses[pos+1:], o.witnesses[pos:])
	o.witnesses[pos] = entry
}

// CountDisjointShortPaths greedily packs pairwise internally-vertex-disjoint
// (Vertices mode) or edge-disjoint (Edges mode) u-v paths of weight at most
// bound, stopping at limit. A count of c certifies that no fault set of size
// < c can stretch (u,v) beyond bound — the soundness core of the
// polynomial-time conservative greedy (core.GreedyConservative). A direct
// u-v edge within the bound counts as limit in Vertices mode (it cannot be
// vertex-faulted at all).
func (o *Oracle) CountDisjointShortPaths(u, v int, bound float64, limit int) (int, error) {
	if u < 0 || u >= o.g.NumVertices() || v < 0 || v >= o.g.NumVertices() || u == v {
		return 0, fmt.Errorf("fault: invalid path-packing pair (%d,%d)", u, v)
	}
	if limit < 0 {
		return 0, fmt.Errorf("fault: negative packing limit %d", limit)
	}
	if o.g.NumEdges() > o.forbiddenE.Cap() {
		return 0, fmt.Errorf("fault: graph grew past EdgeCapacity %d", o.forbiddenE.Cap())
	}
	o.forbiddenV.Clear()
	o.forbiddenE.Clear()
	return o.packPaths(u, v, bound, limit, nil), nil
}

// packPaths packs disjoint short paths starting from the current forbidden
// sets, returning the packing size capped at limit. A non-nil seed counts as
// the packing's first path: its elements (internal vertices in Vertices
// mode, edge IDs in Edges mode) are blocked up front, exactly as if the
// first Dijkstra had just found that path.
func (o *Oracle) packPaths(u, v int, bound float64, limit int, seed []int) int {
	o.packV.CopyFrom(o.forbiddenV)
	o.packE.CopyFrom(o.forbiddenE)
	count := 0
	if seed != nil && limit > 0 {
		count = 1
		for _, x := range seed {
			if o.mode == Vertices {
				o.packV.Add(x)
			} else {
				o.packE.Add(x)
			}
		}
	}
	for count < limit {
		o.dijkstras++
		err := o.solver.RunReach(o.g, u, v, sssp.Options{
			ForbiddenVertices: o.packV,
			ForbiddenEdges:    o.packE,
			Bound:             bound,
		})
		if err != nil {
			panic(err) // unreachable: endpoints validated, never forbidden
		}
		if !o.solver.Reached(v) {
			return count
		}
		count++
		o.packBuf = o.packBuf[:0]
		if o.mode == Vertices {
			o.packBuf = o.solver.AppendPathTo(o.g, v, o.packBuf)
			if len(o.packBuf) <= 2 {
				// A direct u-v edge cannot be hit by vertex faults at all:
				// it alone defeats any budget, so report the cap.
				return limit
			}
			for _, x := range o.packBuf[1 : len(o.packBuf)-1] {
				o.packV.Add(x)
			}
		} else {
			o.packBuf = o.solver.AppendPathEdgesTo(o.g, v, o.packBuf)
			for _, e := range o.packBuf {
				o.packE.Add(e)
			}
		}
	}
	return count
}

func (o *Oracle) push(x int) {
	if o.mode == Vertices {
		o.forbiddenV.Add(x)
	} else {
		o.forbiddenE.Add(x)
	}
	o.chosen = append(o.chosen, x)
	o.chosenHash ^= mix64(uint64(x) + 1)
}

func (o *Oracle) pop(x int) {
	if o.mode == Vertices {
		o.forbiddenV.Remove(x)
	} else {
		o.forbiddenE.Remove(x)
	}
	o.chosen = o.chosen[:len(o.chosen)-1]
	o.chosenHash ^= mix64(uint64(x) + 1)
}

// mix64 is the splitmix64 finalizer: the per-element hash whose XOR forms
// the order-independent fault-set key. Chosen sets have distinct elements
// (a forbidden element never reappears on a surviving path), so XOR of
// injectively mixed elements collides only with probability ~2^-64 — far
// below the error rate of the hardware running the search.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// equalSets reports whether two small fault sets hold the same elements
// (order-insensitive; elements within one set are distinct).
func equalSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !contains(b, x) {
			return false
		}
	}
	return true
}
