package fault

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// bruteForceExists enumerates every fault set of size <= budget over the
// full universe (all vertices except u,v; or all edges) and reports whether
// any makes dist(u,v) > bound. Exponential; tiny graphs only.
func bruteForceExists(g *graph.Graph, mode Mode, u, v int, bound float64, budget int) bool {
	var universe []int
	if mode == Vertices {
		for x := 0; x < g.NumVertices(); x++ {
			if x != u && x != v {
				universe = append(universe, x)
			}
		}
	} else {
		for e := 0; e < g.NumEdges(); e++ {
			universe = append(universe, e)
		}
	}
	var try func(start int, chosen []int) bool
	check := func(chosen []int) bool {
		opts := sssp.Options{}
		if mode == Vertices {
			opts.ForbiddenVertices = bitset.FromSlice(g.NumVertices(), chosen)
		} else {
			opts.ForbiddenEdges = bitset.FromSlice(g.NumEdges(), chosen)
		}
		return sssp.Dist(g, u, v, opts) > bound
	}
	try = func(start int, chosen []int) bool {
		if check(chosen) {
			return true
		}
		if len(chosen) == budget {
			return false
		}
		for i := start; i < len(universe); i++ {
			if try(i+1, append(chosen, universe[i])) {
				return true
			}
		}
		return false
	}
	return try(0, nil)
}

// validateWitness confirms the oracle's returned fault set actually works.
func validateWitness(t *testing.T, g *graph.Graph, mode Mode, u, v int, bound float64, budget int, witness []int) {
	t.Helper()
	if len(witness) > budget {
		t.Fatalf("witness %v exceeds budget %d", witness, budget)
	}
	opts := sssp.Options{}
	if mode == Vertices {
		for _, x := range witness {
			if x == u || x == v {
				t.Fatalf("witness %v contains an endpoint", witness)
			}
		}
		opts.ForbiddenVertices = bitset.FromSlice(g.NumVertices(), witness)
	} else {
		opts.ForbiddenEdges = bitset.FromSlice(g.NumEdges(), witness)
	}
	if d := sssp.Dist(g, u, v, opts); d <= bound {
		t.Fatalf("witness %v does not work: dist=%v <= bound=%v", witness, d, bound)
	}
}

func mustOracle(t *testing.T, g *graph.Graph, mode Mode, opts Options) *Oracle {
	t.Helper()
	o, err := NewOracle(g, mode, opts)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	return o
}

func TestNewOracleInvalidMode(t *testing.T) {
	if _, err := NewOracle(graph.New(2), Mode(0), Options{}); err == nil {
		t.Error("invalid mode should error")
	}
}

func TestModeString(t *testing.T) {
	if Vertices.String() != "vertex" || Edges.String() != "edge" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestFindFaultSetQueryErrors(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	o := mustOracle(t, g, Vertices, Options{})
	if _, _, err := o.FindFaultSet(-1, 1, 1, 0); err == nil {
		t.Error("negative endpoint should error")
	}
	if _, _, err := o.FindFaultSet(0, 3, 1, 0); err == nil {
		t.Error("out-of-range endpoint should error")
	}
	if _, _, err := o.FindFaultSet(1, 1, 1, 0); err == nil {
		t.Error("coincident endpoints should error")
	}
	if _, _, err := o.FindFaultSet(0, 1, 1, -1); err == nil {
		t.Error("negative budget should error")
	}
}

func TestEdgeCapacityGrowth(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	o := mustOracle(t, g, Edges, Options{EdgeCapacity: 2})
	g.MustAddEdge(1, 2, 1)
	if _, _, err := o.FindFaultSet(0, 2, 5, 1); err != nil {
		t.Fatalf("growth within capacity should work: %v", err)
	}
	g.MustAddEdge(2, 3, 1)
	if _, _, err := o.FindFaultSet(0, 3, 5, 1); err == nil {
		t.Error("growth past capacity should error")
	}
}

func TestVertexModeDiamond(t *testing.T) {
	// 0-1-3 (weight 2) and 0-2-3 (weight 4): u=0, v=3.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 3, 2)
	o := mustOracle(t, g, Vertices, Options{})

	// Budget 0, bound 1.9: dist=2 > 1.9 already, empty witness.
	w, ok, err := o.FindFaultSet(0, 3, 1.9, 0)
	if err != nil || !ok || len(w) != 0 {
		t.Errorf("bound 1.9: got %v,%v,%v; want empty witness", w, ok, err)
	}
	// Budget 0, bound 2: dist=2 <= 2, no witness.
	if _, ok, _ := o.FindFaultSet(0, 3, 2, 0); ok {
		t.Error("budget 0 bound 2 should fail")
	}
	// Budget 1, bound 2: fault vertex 1 -> dist 4 > 2.
	w, ok, err = o.FindFaultSet(0, 3, 2, 1)
	if err != nil || !ok {
		t.Fatalf("budget 1 bound 2: %v %v", ok, err)
	}
	validateWitness(t, g, Vertices, 0, 3, 2, 1, w)
	// Budget 1, bound 4: single fault cannot push beyond 4 (other path).
	if _, ok, _ := o.FindFaultSet(0, 3, 4, 1); ok {
		t.Error("budget 1 bound 4 should fail")
	}
	// Budget 2, bound 4: fault both internal vertices -> disconnected.
	w, ok, _ = o.FindFaultSet(0, 3, 4, 2)
	if !ok {
		t.Fatal("budget 2 bound 4 should succeed")
	}
	validateWitness(t, g, Vertices, 0, 3, 4, 2, w)
}

func TestVertexModeDirectEdgeUnbreakable(t *testing.T) {
	// With a direct u-v edge within the bound, no vertex fault set works.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 1, 1)
	o := mustOracle(t, g, Vertices, Options{})
	if _, ok, _ := o.FindFaultSet(0, 1, 1, 2); ok {
		t.Error("direct edge within bound cannot be vertex-faulted")
	}
}

func TestEdgeModeDirectEdge(t *testing.T) {
	// Edge faults can remove the direct edge.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	o := mustOracle(t, g, Edges, Options{})
	w, ok, err := o.FindFaultSet(0, 1, 10, 1)
	if err != nil || !ok {
		t.Fatalf("edge mode should fault the only edge: %v %v", ok, err)
	}
	validateWitness(t, g, Edges, 0, 1, 10, 1, w)
}

func TestEdgeModeCycle(t *testing.T) {
	// C4 with unit weights, u=0, v=2 (distance 2, two edge-disjoint paths).
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	o := mustOracle(t, g, Edges, Options{})
	// One edge fault: the other path (weight 2) remains; bound 1.5 works
	// though (2 > 1.5)? dist without faults is already 2 > 1.5: empty set.
	w, ok, _ := o.FindFaultSet(0, 2, 1.5, 0)
	if !ok || len(w) != 0 {
		t.Error("bound 1.5 should hold with no faults")
	}
	// Bound 2 budget 1: faulting one path's edge leaves the other at 2 <= 2.
	if _, ok, _ := o.FindFaultSet(0, 2, 2, 1); ok {
		t.Error("single edge fault cannot beat bound 2 on C4")
	}
	// Bound 2 budget 2: fault one edge from each path.
	w, ok, _ = o.FindFaultSet(0, 2, 2, 2)
	if !ok {
		t.Fatal("two edge faults should disconnect 0-2 within bound")
	}
	validateWitness(t, g, Edges, 0, 2, 2, 2, w)
}

func TestCallCounters(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	o := mustOracle(t, g, Vertices, Options{})
	if _, _, err := o.FindFaultSet(0, 2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if o.Calls() != 1 {
		t.Errorf("Calls() = %d, want 1", o.Calls())
	}
	if o.Dijkstras() == 0 {
		t.Error("Dijkstras() should be positive")
	}
	if o.Mode() != Vertices {
		t.Error("Mode() wrong")
	}
}

func randomConnectedGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(perm[i], perm[rng.Intn(i)], float64(1+rng.Intn(3)))
	}
	for tries := 0; tries < extra; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, float64(1+rng.Intn(3)))
	}
	return g
}

// TestQuickOracleMatchesBruteForce fuzzes both modes and all four
// pruning/memo configurations against exhaustive enumeration.
func TestQuickOracleMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := randomConnectedGraph(rng, n, n)
		mode := Vertices
		if rng.Intn(2) == 0 {
			mode = Edges
		}
		u := rng.Intn(n)
		v := (u + 1 + rng.Intn(n-1)) % n
		budget := rng.Intn(3)
		bound := float64(1+rng.Intn(4)) + 0.5
		want := bruteForceExists(g, mode, u, v, bound, budget)
		for _, opts := range []Options{
			{},
			{DisablePruning: true},
			{DisableMemo: true},
			{DisablePruning: true, DisableMemo: true},
		} {
			o, err := NewOracle(g, mode, opts)
			if err != nil {
				return false
			}
			w, got, err := o.FindFaultSet(u, v, bound, budget)
			if err != nil || got != want {
				return false
			}
			if got {
				// Inline witness validation (can't t.Fatal inside quick).
				so := sssp.Options{}
				if mode == Vertices {
					so.ForbiddenVertices = bitset.FromSlice(n, w)
				} else {
					so.ForbiddenEdges = bitset.FromSlice(g.NumEdges(), w)
				}
				if len(w) > budget || sssp.Dist(g, u, v, so) <= bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestDisconnectedPair(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	o := mustOracle(t, g, Vertices, Options{})
	w, ok, err := o.FindFaultSet(0, 2, math.MaxFloat64, 0)
	if err != nil || !ok || len(w) != 0 {
		t.Error("disconnected pair should need no faults at any bound")
	}
}

func BenchmarkOracleVFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 60, 200)
	o, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.FindFaultSet(0, 30, 4, 3); err != nil {
			b.Fatal(err)
		}
	}
}
