package fault

import (
	"math/rand"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/gen"
)

// TestObserveQuerySampling checks the latency hook's contract: roughly one
// sample per querySampleEvery calls, positive durations, and identical
// query answers with and without the hook.
func TestObserveQuerySampling(t *testing.T) {
	g, err := gen.ConnectedGNM(40, 300, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var samples []time.Duration
	observed, err := NewOracle(g, Vertices, Options{
		ObserveQuery: func(d time.Duration) { samples = append(samples, d) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const queries = 100
	for i := 0; i < queries; i++ {
		e := g.Edge(i % g.NumEdges())
		w1, ok1, err1 := plain.FindFaultSet(e.U, e.V, 3*e.Weight, 1)
		w2, ok2, err2 := observed.FindFaultSet(e.U, e.V, 3*e.Weight, 1)
		if err1 != nil || err2 != nil {
			t.Fatalf("query %d: %v / %v", i, err1, err2)
		}
		if ok1 != ok2 || len(w1) != len(w2) {
			t.Fatalf("query %d: hook changed the answer (%v/%v vs %v/%v)", i, ok1, w1, ok2, w2)
		}
	}
	want := queries / querySampleEvery
	if len(samples) != want {
		t.Fatalf("got %d samples for %d queries, want %d (stride %d)", len(samples), queries, want, querySampleEvery)
	}
	for i, d := range samples {
		if d < 0 {
			t.Fatalf("sample %d negative: %v", i, d)
		}
	}
}
