package sssp

import (
	"math"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// BellmanFord computes shortest-path distances from src with a simple
// O(n·m) relaxation loop. It exists as an independent reference
// implementation for testing the Dijkstra solver (the graph type only
// permits positive weights, so both must agree everywhere).
func BellmanFord(g *graph.Graph, src int, opts Options) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= n || opts.ForbiddenVertices.Contains(src) {
		return dist
	}
	dist[src] = 0
	edges := g.Edges()
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range edges {
			if opts.ForbiddenEdges.Contains(e.ID) ||
				opts.ForbiddenVertices.Contains(e.U) ||
				opts.ForbiddenVertices.Contains(e.V) {
				continue
			}
			if d := dist[e.U] + e.Weight; d < dist[e.V] {
				dist[e.V] = d
				changed = true
			}
			if d := dist[e.V] + e.Weight; d < dist[e.U] {
				dist[e.U] = d
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if opts.Bound > 0 {
		for v := range dist {
			if dist[v] > opts.Bound {
				dist[v] = math.Inf(1)
			}
		}
	}
	return dist
}
