package sssp

import (
	"fmt"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// BFSResult holds hop counts from a breadth-first search (edge weights
// ignored). Hops[v] == -1 means v is unreachable.
type BFSResult struct {
	Hops       []int
	ParentEdge []int // edge ID used to reach v, -1 for source/unreached
}

// BFS runs a breadth-first search from src, ignoring edge weights but
// honoring the forbidden masks in opts. If maxHops >= 0, the search stops
// expanding beyond that depth (vertices farther away stay unreachable).
func BFS(g *graph.Graph, src int, maxHops int, opts Options) (*BFSResult, error) {
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("sssp: bfs source %d out of range [0,%d)", src, n)
	}
	if opts.ForbiddenVertices.Contains(src) {
		return nil, fmt.Errorf("sssp: bfs source %d is forbidden", src)
	}
	res := &BFSResult{
		Hops:       make([]int, n),
		ParentEdge: make([]int, n),
	}
	for i := range res.Hops {
		res.Hops[i] = -1
		res.ParentEdge[i] = -1
	}
	res.Hops[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if maxHops >= 0 && res.Hops[u] >= maxHops {
			continue
		}
		for _, arc := range g.Neighbors(u) {
			v := arc.To
			if res.Hops[v] != -1 ||
				opts.ForbiddenVertices.Contains(v) ||
				opts.ForbiddenEdges.Contains(arc.ID) {
				continue
			}
			res.Hops[v] = res.Hops[u] + 1
			res.ParentEdge[v] = arc.ID
			queue = append(queue, v)
		}
	}
	return res, nil
}
