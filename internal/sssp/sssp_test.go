package sssp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// diamond returns the graph
//
//	0 --1-- 1 --1-- 3
//	 \             /
//	  2--- 2 ---2
//
// (path 0-1-3 of weight 2, path 0-2-3 of weight 4).
func diamond() *graph.Graph {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 3, 2)
	return g
}

func TestDijkstraBasic(t *testing.T) {
	g := diamond()
	dists, err := AllDists(g, 0, Options{})
	if err != nil {
		t.Fatalf("AllDists: %v", err)
	}
	want := []float64{0, 1, 2, 2}
	for v, d := range want {
		if dists[v] != d {
			t.Errorf("dist[%d] = %v, want %v", v, dists[v], d)
		}
	}
}

func TestDijkstraForbiddenVertex(t *testing.T) {
	g := diamond()
	opts := Options{ForbiddenVertices: bitset.FromSlice(4, []int{1})}
	if got := Dist(g, 0, 3, opts); got != 4 {
		t.Errorf("dist avoiding vertex 1 = %v, want 4", got)
	}
	opts = Options{ForbiddenVertices: bitset.FromSlice(4, []int{1, 2})}
	if got := Dist(g, 0, 3, opts); !math.IsInf(got, 1) {
		t.Errorf("dist avoiding both = %v, want +Inf", got)
	}
}

func TestDijkstraForbiddenEdge(t *testing.T) {
	g := diamond()
	// Forbid edge (0,1) (ID 0): forced through 2.
	opts := Options{ForbiddenEdges: bitset.FromSlice(4, []int{0})}
	if got := Dist(g, 0, 3, opts); got != 4 {
		t.Errorf("dist avoiding edge 0 = %v, want 4", got)
	}
}

func TestDijkstraBound(t *testing.T) {
	g := diamond()
	s := NewSolver(4)
	if err := s.Run(g, 0, Options{Bound: 1.5}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Reached(1) || s.Dist(1) != 1 {
		t.Error("vertex 1 within bound should be reached")
	}
	if s.Reached(3) || s.Reached(2) {
		t.Error("vertices beyond bound should be unreached")
	}
	if !math.IsInf(s.Dist(3), 1) {
		t.Errorf("Dist(3) = %v, want +Inf", s.Dist(3))
	}
	// Bound exactly on a distance keeps it reachable.
	if err := s.Run(g, 0, Options{Bound: 2}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Reached(3) || s.Dist(3) != 2 {
		t.Error("vertex at exactly the bound should be reached")
	}
}

func TestRunTargetEarlyExit(t *testing.T) {
	g := diamond()
	s := NewSolver(4)
	if err := s.RunTarget(g, 0, 1, Options{}); err != nil {
		t.Fatalf("RunTarget: %v", err)
	}
	if !s.Reached(1) || s.Dist(1) != 1 {
		t.Error("target not settled correctly")
	}
	if err := s.RunTarget(g, 0, 9, Options{}); err == nil {
		t.Error("out-of-range target should error")
	}
}

func TestPathReconstruction(t *testing.T) {
	g := diamond()
	verts, edges, ok := Path(g, 0, 3, Options{})
	if !ok {
		t.Fatal("Path not found")
	}
	wantV := []int{0, 1, 3}
	if len(verts) != len(wantV) {
		t.Fatalf("path vertices = %v, want %v", verts, wantV)
	}
	for i := range wantV {
		if verts[i] != wantV[i] {
			t.Fatalf("path vertices = %v, want %v", verts, wantV)
		}
	}
	wantE := []int{0, 1}
	for i := range wantE {
		if edges[i] != wantE[i] {
			t.Fatalf("path edges = %v, want %v", edges, wantE)
		}
	}
}

func TestPathToSource(t *testing.T) {
	g := diamond()
	s := NewSolver(4)
	if err := s.Run(g, 2, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	verts := s.PathTo(g, 2)
	if len(verts) != 1 || verts[0] != 2 {
		t.Errorf("PathTo(source) = %v, want [2]", verts)
	}
	if edges := s.PathEdgesTo(g, 2); len(edges) != 0 {
		t.Errorf("PathEdgesTo(source) = %v, want empty", edges)
	}
}

func TestPathUnreachable(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, _, ok := Path(g, 0, 2, Options{}); ok {
		t.Error("path to isolated vertex should not exist")
	}
	s := NewSolver(3)
	if err := s.Run(g, 0, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.PathTo(g, 2) != nil || s.PathEdgesTo(g, 2) != nil {
		t.Error("paths to unreached vertices must be nil")
	}
}

func TestRunErrors(t *testing.T) {
	g := diamond()
	s := NewSolver(4)
	if err := s.Run(g, -1, Options{}); err == nil {
		t.Error("negative source should error")
	}
	if err := s.Run(g, 4, Options{}); err == nil {
		t.Error("out-of-range source should error")
	}
	forbidden := Options{ForbiddenVertices: bitset.FromSlice(4, []int{0})}
	if err := s.Run(g, 0, forbidden); err == nil {
		t.Error("forbidden source should error")
	}
	small := NewSolver(2)
	if err := small.Run(g, 0, Options{}); err == nil {
		t.Error("undersized solver should error")
	}
}

func TestSolverReuseIsClean(t *testing.T) {
	g := diamond()
	s := NewSolver(4)
	if err := s.Run(g, 0, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Second run from a different source on a graph where some previously
	// reached vertices are now unreachable.
	h := graph.New(4)
	h.MustAddEdge(2, 3, 5)
	if err := s.Run(h, 2, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Reached(0) || s.Reached(1) {
		t.Error("stale reachability leaked across runs")
	}
	if s.Dist(3) != 5 {
		t.Errorf("Dist(3) = %v, want 5", s.Dist(3))
	}
}

func TestBFSBasic(t *testing.T) {
	g := diamond()
	res, err := BFS(g, 0, -1, Options{})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	// Hops ignore weights: 3 is two hops away via either route.
	want := []int{0, 1, 1, 2}
	for v, h := range want {
		if res.Hops[v] != h {
			t.Errorf("hops[%d] = %d, want %d", v, res.Hops[v], h)
		}
	}
}

func TestBFSMaxHops(t *testing.T) {
	g := diamond()
	res, err := BFS(g, 0, 1, Options{})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if res.Hops[3] != -1 {
		t.Errorf("hops[3] = %d, want -1 (beyond maxHops)", res.Hops[3])
	}
	if res.Hops[1] != 1 || res.Hops[2] != 1 {
		t.Error("depth-1 vertices should be reached")
	}
}

func TestBFSForbidden(t *testing.T) {
	g := diamond()
	opts := Options{ForbiddenVertices: bitset.FromSlice(4, []int{1})}
	res, err := BFS(g, 0, -1, opts)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if res.Hops[1] != -1 {
		t.Error("forbidden vertex was visited")
	}
	if res.Hops[3] != 2 {
		t.Errorf("hops[3] = %d, want 2 via vertex 2", res.Hops[3])
	}
	if _, err := BFS(g, 0, -1, Options{ForbiddenVertices: bitset.FromSlice(4, []int{0})}); err == nil {
		t.Error("forbidden source should error")
	}
	if _, err := BFS(g, 7, -1, Options{}); err == nil {
		t.Error("out-of-range source should error")
	}
}

func randomGraph(rng *rand.Rand, n int, extraEdges int) *graph.Graph {
	g := graph.New(n)
	// Random spanning tree first so most of the graph is connected.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[rng.Intn(i)]
		g.MustAddEdge(u, v, 0.1+rng.Float64())
	}
	for tries := 0; tries < extraEdges; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.1+rng.Float64())
	}
	return g
}

// TestQuickDijkstraMatchesBellmanFord fuzzes the solver (with random
// forbidden masks) against the independent Bellman-Ford reference.
func TestQuickDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, 2*n)
		opts := Options{}
		if rng.Intn(2) == 0 {
			fv := bitset.New(n)
			for v := 1; v < n; v++ { // never forbid the source (0)
				if rng.Intn(5) == 0 {
					fv.Add(v)
				}
			}
			opts.ForbiddenVertices = fv
		}
		if rng.Intn(2) == 0 {
			fe := bitset.New(g.NumEdges())
			for e := 0; e < g.NumEdges(); e++ {
				if rng.Intn(5) == 0 {
					fe.Add(e)
				}
			}
			opts.ForbiddenEdges = fe
		}
		got, err := AllDists(g, 0, opts)
		if err != nil {
			return false
		}
		want := BellmanFord(g, 0, opts)
		for v := range got {
			gv, wv := got[v], want[v]
			if math.IsInf(gv, 1) != math.IsInf(wv, 1) {
				return false
			}
			if !math.IsInf(gv, 1) && math.Abs(gv-wv) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPathsAreValid checks that reported paths exist in the graph,
// avoid forbidden elements, and have total weight equal to the distance.
func TestQuickPathsAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, n)
		fv := bitset.New(n)
		for v := 2; v < n; v++ {
			if rng.Intn(6) == 0 {
				fv.Add(v)
			}
		}
		opts := Options{ForbiddenVertices: fv}
		verts, edges, ok := Path(g, 0, 1, opts)
		if !ok {
			// Cross-check with reference: must really be unreachable.
			return math.IsInf(BellmanFord(g, 0, opts)[1], 1)
		}
		if verts[0] != 0 || verts[len(verts)-1] != 1 || len(edges) != len(verts)-1 {
			return false
		}
		total := 0.0
		for i, eid := range edges {
			e := g.Edge(eid)
			if e.Other(verts[i]) != verts[i+1] {
				return false
			}
			if fv.Contains(verts[i+1]) && verts[i+1] != 1 {
				return false
			}
			total += e.Weight
		}
		return math.Abs(total-BellmanFord(g, 0, opts)[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDijkstraGrid(b *testing.B) {
	const side = 40
	g := graph.New(side * side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := r*side + c
			if c+1 < side {
				g.MustAddEdge(v, v+1, 1)
			}
			if r+1 < side {
				g.MustAddEdge(v, v+side, 1)
			}
		}
	}
	s := NewSolver(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(g, 0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
