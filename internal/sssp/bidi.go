package sssp

import (
	"fmt"
	"math"

	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/pq"
)

// bidi holds the Solver's backward-search state, allocated on first use of
// RunReachBidi so forward-only callers pay nothing. The forward half of a
// bidirectional run lives in the Solver's regular arrays, which is what lets
// Reached/AppendPathTo/AppendPathEdgesTo work unchanged after a successful
// bidirectional run (the winning path is spliced into the forward parent
// chain).
type bidi struct {
	heap    *pq.Heap
	dist    []float64
	parent  []int
	settled []bool
	touched []int
}

func (s *Solver) ensureBidi() {
	n := len(s.dist)
	if s.b == nil {
		s.b = &bidi{
			heap:    pq.New(n),
			dist:    make([]float64, n),
			parent:  make([]int, n),
			settled: make([]bool, n),
			touched: make([]int, 0, n),
		}
		for i := range s.b.dist {
			s.b.dist[i] = math.Inf(1)
			s.b.parent[i] = -1
		}
		return
	}
	if n <= len(s.b.dist) {
		return
	}
	old := len(s.b.dist)
	dist := make([]float64, n)
	parent := make([]int, n)
	settled := make([]bool, n)
	for i := old; i < n; i++ {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	copy(dist, s.b.dist)
	copy(parent, s.b.parent)
	copy(settled, s.b.settled)
	s.b.dist, s.b.parent, s.b.settled = dist, parent, settled
	s.b.heap.Grow(n)
}

func (b *bidi) reset() {
	for _, v := range b.touched {
		b.dist[v] = math.Inf(1)
		b.parent[v] = -1
		b.settled[v] = false
	}
	b.touched = b.touched[:0]
	b.heap.Reset()
}

// RunReachBidi answers the same bounded reachability question as RunReach —
// "is there a src-target path of weight <= opts.Bound?" — by meeting in the
// middle: two Dijkstra frontiers grow from src and target simultaneously
// (both honoring the forbidden masks), and the search succeeds as soon as
// the frontiers certify a combined path within the bound. Each frontier
// explores a ball of roughly half the bound's radius, so on graphs where
// ball volume grows quickly with radius this examines far fewer vertices
// than RunReach's single bound-radius ball — precisely the fault oracle's
// workload, where every query is such a bounded reachability test.
//
// The contract is narrower than RunReach's: after RunReachBidi only the
// TARGET's results are meaningful. Reached(target) is exact; when true,
// AppendPathTo/AppendPathEdgesTo/PathTo/PathEdgesTo for target return a
// valid simple path of weight <= opts.Bound (not necessarily shortest), and
// Dist(target) is that path's weight. Every other vertex's state is
// unspecified. A forbidden target is reported unreached, matching RunReach.
//
// The failure cut is exact: with mu the best certified meeting value, the
// search stops only when mu <= bound (success) or when the two frontiers'
// next keys sum beyond the bound (every undiscovered path must cross both
// frontiers, so its weight exceeds topF+topB > bound) or a frontier
// exhausts its half of the ball.
func (s *Solver) RunReachBidi(g *graph.Graph, src, target int, opts Options) error {
	n := g.NumVertices()
	if n > len(s.dist) {
		return fmt.Errorf("sssp: graph has %d vertices, solver capacity is %d", n, len(s.dist))
	}
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if target < 0 || target >= n {
		return fmt.Errorf("sssp: target %d out of range [0,%d)", target, n)
	}
	if opts.ForbiddenVertices.Contains(src) {
		return fmt.Errorf("sssp: source %d is forbidden", src)
	}
	s.reset()
	s.ensureBidi()
	b := s.b
	b.reset()

	if opts.ForbiddenVertices.Contains(target) {
		return nil // unreached: no path may end in a forbidden vertex
	}
	distF, parentF, settledF := s.dist, s.parentEdge, s.settled
	distF[src] = 0
	s.touched = append(s.touched, src)
	if src == target {
		settledF[src] = true
		return nil
	}
	distB, parentB, settledB := b.dist, b.parent, b.settled
	distB[target] = 0
	b.touched = append(b.touched, target)
	s.heap.Push(src, 0)
	b.heap.Push(target, 0)

	fvw := opts.ForbiddenVertices.Words()
	few := opts.ForbiddenEdges.Words()
	bound := opts.Bound
	if bound <= 0 {
		bound = math.Inf(1)
	}

	// mu is the weight of the best meeting path certified so far and meet
	// its meeting vertex. Candidates are checked whenever a vertex that is
	// finite on one side is settled or improved on the other, so mu always
	// reflects the current dist values of every doubly-discovered vertex —
	// the invariant behind both the failure cut and the spliced path's
	// simplicity (see the overlap argument at splice below).
	mu := math.Inf(1)
	meet := -1

	for meet < 0 || mu > bound {
		topF, topB := math.Inf(1), math.Inf(1)
		if s.heap.Len() > 0 {
			_, topF = s.heap.PeekMin()
		}
		if b.heap.Len() > 0 {
			_, topB = b.heap.PeekMin()
		}
		if s.heap.Len() == 0 && b.heap.Len() == 0 {
			return nil // both balls exhausted: unreached within bound
		}
		if topF+topB > bound {
			// Any path not yet certified must leave both settled regions,
			// costing at least topF on the src side and topB on the target
			// side — over the bound. (An empty side contributes +Inf, which
			// is correct: that side's entire <=bound ball is settled, so an
			// uncertified path cannot exist at all.)
			return nil
		}
		if topF <= topB {
			// Expand forward.
			u, d := s.heap.PopMin()
			settledF[u] = true
			if !math.IsInf(distB[u], 1) {
				if c := d + distB[u]; c < mu {
					mu, meet = c, u
				}
			}
			arcs := g.Neighbors(u)
			for i := range arcs {
				arc := &arcs[i]
				v := arc.To
				if settledF[v] {
					continue
				}
				if fvw != nil && fvw[uint(v)>>6]&(1<<(uint(v)&63)) != 0 {
					continue
				}
				if few != nil && few[uint(arc.ID)>>6]&(1<<(uint(arc.ID)&63)) != 0 {
					continue
				}
				nd := d + arc.Weight
				if nd > bound || nd >= distF[v] {
					continue
				}
				if math.IsInf(distF[v], 1) {
					s.touched = append(s.touched, v)
				}
				distF[v] = nd
				parentF[v] = arc.ID
				if !math.IsInf(distB[v], 1) {
					if c := nd + distB[v]; c < mu {
						mu, meet = c, v
					}
				}
				s.heap.Push(v, nd)
			}
		} else {
			// Expand backward (the graph is undirected, so the same arcs
			// serve both directions).
			u, d := b.heap.PopMin()
			settledB[u] = true
			if !math.IsInf(distF[u], 1) {
				if c := d + distF[u]; c < mu {
					mu, meet = c, u
				}
			}
			arcs := g.Neighbors(u)
			for i := range arcs {
				arc := &arcs[i]
				v := arc.To
				if settledB[v] {
					continue
				}
				if fvw != nil && fvw[uint(v)>>6]&(1<<(uint(v)&63)) != 0 {
					continue
				}
				if few != nil && few[uint(arc.ID)>>6]&(1<<(uint(arc.ID)&63)) != 0 {
					continue
				}
				nd := d + arc.Weight
				if nd > bound || nd >= distB[v] {
					continue
				}
				if math.IsInf(distB[v], 1) {
					b.touched = append(b.touched, v)
				}
				distB[v] = nd
				parentB[v] = arc.ID
				if !math.IsInf(distF[v], 1) {
					if c := nd + distF[v]; c < mu {
						mu, meet = c, v
					}
				}
				b.heap.Push(v, nd)
			}
		}
	}

	if opts.ReachOnly {
		// The caller wants only the boolean: mark the target reached with a
		// certified-path upper bound and skip the splice walk entirely. The
		// parent chain for target is left incomplete, which is exactly what
		// Options.ReachOnly documents.
		if math.IsInf(distF[target], 1) {
			s.touched = append(s.touched, target)
			distF[target] = mu
		}
		settledF[target] = true
		return nil
	}

	// Success: splice the backward half onto the forward parent chain so the
	// regular extractors see one src->target path. The two halves cannot
	// share a vertex besides the meeting point: a shared vertex w would have
	// had distF[w]+distB[w] checked as a candidate with its final values (the
	// last improvement to either side re-checks), and chain arithmetic with
	// strictly positive weights would force mu > distF[w]+distB[w] >= mu — a
	// contradiction. Hence the walk below never revisits forward-chain
	// vertices and the result is a simple path of weight mu <= bound.
	cur := meet
	for {
		eid := parentB[cur]
		if eid < 0 {
			break
		}
		e := g.Edge(eid)
		nxt := e.Other(cur)
		if math.IsInf(distF[nxt], 1) {
			s.touched = append(s.touched, nxt)
		}
		distF[nxt] = distF[cur] + e.Weight
		parentF[nxt] = eid
		cur = nxt
	}
	// cur is now the target (the backward chain's root).
	settledF[cur] = true
	return nil
}
