package sssp

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/bitset"
)

// FuzzReachBidiDifferential derives a random bounded-reachability query from
// the fuzzed parameters and cross-checks RunReachBidi against RunReach,
// including full validation of the bidirectional path (simplicity, masks,
// bound). Seed corpus lives in testdata/fuzz/FuzzReachBidiDifferential;
// `go test` replays it on every run, and
// `go test -fuzz=FuzzReachBidiDifferential ./internal/sssp` explores further.
func FuzzReachBidiDifferential(f *testing.F) {
	f.Add(int64(1), uint64(6), uint64(8), uint64(3), false, false)
	f.Add(int64(2), uint64(16), uint64(40), uint64(0), true, true)
	f.Add(int64(3), uint64(9), uint64(0), uint64(12), true, false)
	f.Add(int64(20260726), uint64(22), uint64(66), uint64(7), false, true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw, boundRaw uint64, maskV, maskE bool) {
		n := int(2 + nRaw%24)       // 2..25 vertices
		extra := int(extraRaw % 80) // up to 80 extra edges attempted
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, extra)
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (u + 1) % n
		}
		var fv, fe *bitset.Set
		if maskV {
			fv = bitset.New(n)
			for i := 0; i < rng.Intn(n); i++ {
				if x := rng.Intn(n); x != u {
					fv.Add(x)
				}
			}
		}
		if maskE && g.NumEdges() > 0 {
			fe = bitset.New(g.NumEdges())
			for i := 0; i < rng.Intn(g.NumEdges()+1); i++ {
				fe.Add(rng.Intn(g.NumEdges()))
			}
		}
		// boundRaw 0 means unbounded; otherwise spread over (0, ~13].
		bound := float64(boundRaw%1024) / 80
		checkBidiAgainstReach(t, g, u, v, fv, fe, bound)
	})
}
