package sssp

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// TestRunReachMatchesRunTarget verifies RunReach's contract against the
// exact search on random instances: identical reachability verdicts, and on
// success a valid path whose weight respects the bound.
func TestRunReachMatchesRunTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(3*n))
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		var fv *bitset.Set
		if rng.Intn(2) == 0 {
			fv = bitset.New(n)
			for i := 0; i < rng.Intn(n/2+1); i++ {
				x := rng.Intn(n)
				if x != u && x != v {
					fv.Add(x)
				}
			}
		}
		bound := 1 + 10*rng.Float64()
		opts := Options{ForbiddenVertices: fv, Bound: bound}

		exact := NewSolver(n)
		if err := exact.RunTarget(g, u, v, opts); err != nil {
			t.Fatal(err)
		}
		reach := NewSolver(n)
		if err := reach.RunReach(g, u, v, opts); err != nil {
			t.Fatal(err)
		}

		if exact.Reached(v) != reach.Reached(v) {
			t.Fatalf("trial %d: RunTarget reached=%v, RunReach reached=%v (bound %v)",
				trial, exact.Reached(v), reach.Reached(v), bound)
		}
		if !reach.Reached(v) {
			continue
		}
		// The RunReach path must be consistent and within the bound; it need
		// not be shortest.
		path := reach.PathTo(g, v)
		if len(path) < 2 || path[0] != u || path[len(path)-1] != v {
			t.Fatalf("trial %d: bad RunReach path %v for (%d,%d)", trial, path, u, v)
		}
		var weight float64
		for i := 1; i < len(path); i++ {
			e, ok := g.EdgeBetween(path[i-1], path[i])
			if !ok {
				t.Fatalf("trial %d: path step (%d,%d) is not an edge", trial, path[i-1], path[i])
			}
			if fv.Contains(path[i-1]) || fv.Contains(path[i]) {
				t.Fatalf("trial %d: path %v crosses forbidden vertex", trial, path)
			}
			weight += e.Weight
		}
		if weight > bound+1e-9 {
			t.Fatalf("trial %d: RunReach path weight %v exceeds bound %v", trial, weight, bound)
		}
		if d := reach.Dist(v); d < exact.Dist(v)-1e-9 {
			t.Fatalf("trial %d: RunReach dist %v below true shortest %v", trial, d, exact.Dist(v))
		}
	}
}

// TestAppendPathVariants checks the zero-allocation path extractors agree
// with their allocating counterparts and honor a non-empty destination.
func TestAppendPathVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 15, 25)
	s := NewSolver(15)
	if err := s.RunTarget(g, 0, 14, Options{}); err != nil {
		t.Fatal(err)
	}
	if !s.Reached(14) {
		t.Skip("14 unreachable under this seed")
	}
	wantV := s.PathTo(g, 14)
	wantE := s.PathEdgesTo(g, 14)

	prefix := []int{-7, -8}
	gotV := s.AppendPathTo(g, 14, append([]int(nil), prefix...))
	if len(gotV) != len(prefix)+len(wantV) {
		t.Fatalf("AppendPathTo length %d, want %d", len(gotV), len(prefix)+len(wantV))
	}
	for i, x := range wantV {
		if gotV[len(prefix)+i] != x {
			t.Fatalf("AppendPathTo mismatch at %d: %v vs %v", i, gotV, wantV)
		}
	}
	gotE := s.AppendPathEdgesTo(g, 14, append([]int(nil), prefix...))
	if len(gotE) != len(prefix)+len(wantE) {
		t.Fatalf("AppendPathEdgesTo length %d, want %d", len(gotE), len(prefix)+len(wantE))
	}
	for i, x := range wantE {
		if gotE[len(prefix)+i] != x {
			t.Fatalf("AppendPathEdgesTo mismatch at %d: %v vs %v", i, gotE, wantE)
		}
	}
}

// TestBorrowSolverGrows checks the pool hands back solvers that fit larger
// graphs after smaller ones (the Ensure path) and that wrapper results stay
// correct across reuse.
func TestBorrowSolverGrows(t *testing.T) {
	small := graph.New(3)
	small.MustAddEdge(0, 1, 1)
	small.MustAddEdge(1, 2, 1)
	big := graph.New(50)
	for i := 1; i < 50; i++ {
		big.MustAddEdge(i-1, i, 1)
	}
	for round := 0; round < 5; round++ {
		if d := Dist(small, 0, 2, Options{}); d != 2 {
			t.Fatalf("round %d: small dist %v, want 2", round, d)
		}
		if d := Dist(big, 0, 49, Options{}); d != 49 {
			t.Fatalf("round %d: big dist %v, want 49", round, d)
		}
		all, err := AllDists(big, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if all[25] != 25 || all[0] != 0 {
			t.Fatalf("round %d: AllDists wrong: d[25]=%v d[0]=%v", round, all[25], all[0])
		}
	}
}
