package sssp

import (
	"math"
	"testing"

	"github.com/ftspanner/ftspanner/internal/graph"
)

func TestEccentricitiesPath(t *testing.T) {
	// Path 0-1-2-3 with unit weights: ecc = [3,2,2,3].
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	want := []float64{3, 2, 2, 3}
	got := Eccentricities(g)
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("ecc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if d := Diameter(g); d != 3 {
		t.Errorf("Diameter = %v, want 3", d)
	}
	if r := Radius(g); r != 2 {
		t.Errorf("Radius = %v, want 2", r)
	}
}

func TestMetricsWeighted(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(0, 2, 10) // never used: 0-1-2 is 4
	if d := Diameter(g); d != 4 {
		t.Errorf("Diameter = %v, want 4", d)
	}
	if r := Radius(g); r != 2.5 {
		t.Errorf("Radius = %v, want 2.5", r)
	}
}

func TestMetricsDisconnected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if d := Diameter(g); !math.IsInf(d, 1) {
		t.Errorf("disconnected Diameter = %v, want +Inf", d)
	}
	if r := Radius(g); !math.IsInf(r, 1) {
		t.Errorf("disconnected Radius = %v, want +Inf", r)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	if Diameter(graph.New(0)) != 0 || Radius(graph.New(0)) != 0 {
		t.Error("empty graph metrics should be 0")
	}
	if Diameter(graph.New(1)) != 0 {
		t.Error("single vertex diameter should be 0")
	}
}
