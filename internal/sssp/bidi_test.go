package sssp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// checkBidiAgainstReach runs both bounded-reachability engines on one query
// and cross-checks the verdicts, then validates the bidirectional path in
// full: endpoints, edge existence, mask avoidance, bound, and simplicity.
func checkBidiAgainstReach(t *testing.T, g *graph.Graph, u, v int, fv, fe *bitset.Set, bound float64) {
	t.Helper()
	opts := Options{ForbiddenVertices: fv, ForbiddenEdges: fe, Bound: bound}
	n := g.NumVertices()

	uni := NewSolver(n)
	if err := uni.RunReach(g, u, v, opts); err != nil {
		t.Fatal(err)
	}
	bidi := NewSolver(n)
	if err := bidi.RunReachBidi(g, u, v, opts); err != nil {
		t.Fatal(err)
	}
	if uni.Reached(v) != bidi.Reached(v) {
		t.Fatalf("(%d,%d) bound=%v: RunReach reached=%v, RunReachBidi reached=%v",
			u, v, bound, uni.Reached(v), bidi.Reached(v))
	}
	if !bidi.Reached(v) {
		return
	}

	path := bidi.PathTo(g, v)
	if len(path) == 0 || path[0] != u || path[len(path)-1] != v {
		t.Fatalf("(%d,%d): bad bidi path %v", u, v, path)
	}
	edges := bidi.PathEdgesTo(g, v)
	if len(edges) != len(path)-1 {
		t.Fatalf("(%d,%d): %d path edges for %d vertices", u, v, len(edges), len(path))
	}
	seen := make(map[int]bool, len(path))
	var weight float64
	for i, x := range path {
		if seen[x] {
			t.Fatalf("(%d,%d): bidi path %v is not simple (repeats %d)", u, v, path, x)
		}
		seen[x] = true
		if fv.Contains(x) {
			t.Fatalf("(%d,%d): bidi path %v crosses forbidden vertex %d", u, v, path, x)
		}
		if i == 0 {
			continue
		}
		e := g.Edge(edges[i-1])
		if !(e.U == path[i-1] && e.V == x) && !(e.V == path[i-1] && e.U == x) {
			t.Fatalf("(%d,%d): path edge %d does not join step (%d,%d)", u, v, e.ID, path[i-1], x)
		}
		if fe.Contains(e.ID) {
			t.Fatalf("(%d,%d): bidi path uses forbidden edge %d", u, v, e.ID)
		}
		weight += e.Weight
	}
	effBound := bound
	if effBound <= 0 {
		effBound = math.Inf(1)
	}
	if weight > effBound+1e-9 {
		t.Fatalf("(%d,%d): bidi path weight %v exceeds bound %v", u, v, weight, bound)
	}
	if d := bidi.Dist(v); math.Abs(d-weight) > 1e-9 {
		t.Fatalf("(%d,%d): Dist reports %v but spliced path weighs %v", u, v, d, weight)
	}
	// The exact shortest distance lower-bounds the reported walk.
	exact := NewSolver(n)
	if err := exact.RunTarget(g, u, v, Options{ForbiddenVertices: fv, ForbiddenEdges: fe}); err != nil {
		t.Fatal(err)
	}
	if weight < exact.Dist(v)-1e-9 {
		t.Fatalf("(%d,%d): bidi path weight %v below true shortest %v", u, v, weight, exact.Dist(v))
	}
}

// TestRunReachBidiMatchesRunReach sweeps randomized graphs, bounds, and
// forbidden masks of both kinds — the differential contract behind using the
// bidirectional engine inside the fault oracle.
func TestRunReachBidiMatchesRunReach(t *testing.T) {
	trials := 1200
	if testing.Short() {
		trials = 200
	}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(24)
		g := randomGraph(rng, n, rng.Intn(4*n))
		if g.NumEdges() == 0 {
			continue
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		var fv, fe *bitset.Set
		if rng.Intn(3) > 0 {
			fv = bitset.New(n)
			for i := 0; i < rng.Intn(n/2+1); i++ {
				if x := rng.Intn(n); x != u {
					fv.Add(x) // the target may be forbidden: both engines report unreached
				}
			}
		}
		if rng.Intn(3) > 0 {
			fe = bitset.New(g.NumEdges())
			for i := 0; i < rng.Intn(g.NumEdges()/2+1); i++ {
				fe.Add(rng.Intn(g.NumEdges()))
			}
		}
		var bound float64
		switch rng.Intn(4) {
		case 0:
			bound = 0 // unbounded
		case 1:
			bound = 0.5 + rng.Float64() // tight
		default:
			bound = 1 + 12*rng.Float64()
		}
		checkBidiAgainstReach(t, g, u, v, fv, fe, bound)
	}
}

// TestRunReachBidiEdgeCases pins the degenerate contracts: coincident
// endpoints, forbidden source (error), forbidden target (unreached), and
// solver reuse across engines.
func TestRunReachBidiEdgeCases(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 5)
	s := NewSolver(4)

	if err := s.RunReachBidi(g, 2, 2, Options{Bound: 1}); err != nil {
		t.Fatal(err)
	}
	if !s.Reached(2) {
		t.Fatal("src==target must be reached")
	}
	if p := s.PathTo(g, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("src==target path %v, want [2]", p)
	}

	fv := bitset.New(4)
	fv.Add(0)
	if err := s.RunReachBidi(g, 0, 3, Options{ForbiddenVertices: fv}); err == nil {
		t.Fatal("forbidden source must error")
	}
	if err := s.RunReachBidi(g, 3, 0, Options{ForbiddenVertices: fv}); err != nil {
		t.Fatal(err)
	}
	if s.Reached(0) {
		t.Fatal("forbidden target must be unreached")
	}

	if err := s.RunReachBidi(g, 5, 0, Options{}); err == nil {
		t.Fatal("out-of-range source must error")
	}
	if err := s.RunReachBidi(g, 0, 5, Options{}); err == nil {
		t.Fatal("out-of-range target must error")
	}

	// Interleave with the forward-only engines on the same solver: state
	// resets must keep them independent.
	if err := s.RunReachBidi(g, 0, 3, Options{Bound: 7}); err != nil {
		t.Fatal(err)
	}
	if !s.Reached(3) {
		t.Fatal("0-3 within 7 must be reached")
	}
	if err := s.RunTarget(g, 0, 3, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Dist(3); got != 7 {
		t.Fatalf("RunTarget after bidi: dist %v, want 7", got)
	}
	if err := s.RunReachBidi(g, 0, 3, Options{Bound: 6}); err != nil {
		t.Fatal(err)
	}
	if s.Reached(3) {
		t.Fatal("0-3 within 6 must be unreached")
	}
}

// TestRunReachBidiAfterEnsure checks the lazily allocated backward state
// survives solver growth.
func TestRunReachBidiAfterEnsure(t *testing.T) {
	small := graph.New(3)
	small.MustAddEdge(0, 1, 1)
	small.MustAddEdge(1, 2, 1)
	s := NewSolver(3)
	if err := s.RunReachBidi(small, 0, 2, Options{Bound: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.Reached(2) {
		t.Fatal("0-2 within 2 must be reached")
	}
	big := graph.New(40)
	for i := 1; i < 40; i++ {
		big.MustAddEdge(i-1, i, 1)
	}
	s.Ensure(40)
	if err := s.RunReachBidi(big, 0, 39, Options{Bound: 39}); err != nil {
		t.Fatal(err)
	}
	if !s.Reached(39) {
		t.Fatal("0-39 within 39 must be reached after Ensure")
	}
	if err := s.RunReachBidi(big, 0, 39, Options{Bound: 38.5}); err != nil {
		t.Fatal(err)
	}
	if s.Reached(39) {
		t.Fatal("0-39 within 38.5 must be unreached")
	}
}

// TestRunReachBidiReachOnly pins Options.ReachOnly: the boolean answer must
// match the full bidirectional run on every query, and solver state must
// reset cleanly between runs even though the path splice is skipped.
func TestRunReachBidiReachOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for inst := 0; inst < 50; inst++ {
		g := randomGraph(rng, 4+rng.Intn(12), rng.Intn(30))
		full := NewSolver(g.NumVertices())
		ro := NewSolver(g.NumVertices())
		for q := 0; q < 20; q++ {
			u, v := rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())
			if u == v {
				continue
			}
			opts := Options{Bound: 1 + 3*rng.Float64()}
			if err := full.RunReachBidi(g, u, v, opts); err != nil {
				t.Fatal(err)
			}
			opts.ReachOnly = true
			if err := ro.RunReachBidi(g, u, v, opts); err != nil {
				t.Fatal(err)
			}
			if full.Reached(v) != ro.Reached(v) {
				t.Fatalf("inst %d query (%d,%d) bound %v: reach-only=%v full=%v",
					inst, u, v, opts.Bound, ro.Reached(v), full.Reached(v))
			}
		}
	}
}
