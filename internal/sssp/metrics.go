package sssp

import (
	"math"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// Eccentricities returns, for every vertex, its weighted eccentricity: the
// maximum shortest-path distance to any other vertex, +Inf if the graph is
// disconnected (and 0 for a single-vertex or empty graph). O(n) Dijkstras.
func Eccentricities(g *graph.Graph) []float64 {
	n := g.NumVertices()
	ecc := make([]float64, n)
	if n <= 1 {
		return ecc
	}
	solver := NewSolver(n)
	for v := 0; v < n; v++ {
		if err := solver.Run(g, v, Options{}); err != nil {
			// Unreachable: v is always a valid, unforbidden source.
			panic(err)
		}
		worst := 0.0
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			d := solver.Dist(u)
			if math.IsInf(d, 1) {
				worst = math.Inf(1)
				break
			}
			if d > worst {
				worst = d
			}
		}
		ecc[v] = worst
	}
	return ecc
}

// Diameter returns the maximum eccentricity (+Inf if disconnected, 0 for
// graphs with fewer than two vertices).
func Diameter(g *graph.Graph) float64 {
	worst := 0.0
	for _, e := range Eccentricities(g) {
		if e > worst {
			worst = e
		}
	}
	return worst
}

// Radius returns the minimum eccentricity (+Inf if disconnected, 0 for
// graphs with fewer than two vertices).
func Radius(g *graph.Graph) float64 {
	ecc := Eccentricities(g)
	if len(ecc) == 0 {
		return 0
	}
	best := ecc[0]
	for _, e := range ecc[1:] {
		if e < best {
			best = e
		}
	}
	return best
}
