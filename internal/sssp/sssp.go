// Package sssp provides single-source and single-pair shortest paths on the
// repository's graph type, with the features the fault-tolerant machinery
// needs: forbidden-vertex and forbidden-edge masks (so callers never
// materialize G \ F), distance bounds with early exit, and a reusable Solver
// that performs no per-query allocation.
package sssp

import (
	"fmt"
	"math"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/pq"
)

// Options configures a shortest-path run. The zero value means: no forbidden
// elements and no distance bound.
type Options struct {
	// ForbiddenVertices are treated as deleted. The source must not be
	// forbidden. nil means none.
	ForbiddenVertices *bitset.Set
	// ForbiddenEdges are treated as deleted. nil means none.
	ForbiddenEdges *bitset.Set
	// Bound, if positive, stops the search once every remaining vertex is
	// known to be farther than Bound; vertices at distance > Bound are
	// reported unreached. Zero or negative means unbounded.
	Bound float64
}

// Solver runs Dijkstra repeatedly over graphs with at most Cap vertices,
// reusing all internal state between runs. It is not safe for concurrent
// use; create one Solver per goroutine.
type Solver struct {
	heap       *pq.Heap
	dist       []float64
	parentEdge []int
	settled    []bool
	touched    []int
}

// NewSolver returns a Solver for graphs with up to n vertices.
func NewSolver(n int) *Solver {
	s := &Solver{
		heap:       pq.New(n),
		dist:       make([]float64, n),
		parentEdge: make([]int, n),
		settled:    make([]bool, n),
		touched:    make([]int, 0, n),
	}
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.parentEdge[i] = -1
	}
	return s
}

// Cap returns the maximum vertex count this solver supports.
func (s *Solver) Cap() int { return len(s.dist) }

// Run computes shortest paths from src to every reachable vertex of g under
// opts. Results are valid until the next Run/RunTarget.
func (s *Solver) Run(g *graph.Graph, src int, opts Options) error {
	return s.run(g, src, -1, opts)
}

// RunTarget is Run with an early exit: the search stops as soon as target is
// settled, so other vertices may be reported unreached.
func (s *Solver) RunTarget(g *graph.Graph, src, target int, opts Options) error {
	if target < 0 || target >= g.NumVertices() {
		return fmt.Errorf("sssp: target %d out of range [0,%d)", target, g.NumVertices())
	}
	return s.run(g, src, target, opts)
}

func (s *Solver) run(g *graph.Graph, src, target int, opts Options) error {
	n := g.NumVertices()
	if n > len(s.dist) {
		return fmt.Errorf("sssp: graph has %d vertices, solver capacity is %d", n, len(s.dist))
	}
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if opts.ForbiddenVertices.Contains(src) {
		return fmt.Errorf("sssp: source %d is forbidden", src)
	}
	s.reset()

	bounded := opts.Bound > 0
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.Push(src, 0)

	for s.heap.Len() > 0 {
		u, d := s.heap.PopMin()
		if bounded && d > opts.Bound {
			break
		}
		s.settled[u] = true
		if u == target {
			break
		}
		for _, arc := range g.Neighbors(u) {
			v := arc.To
			if s.settled[v] ||
				opts.ForbiddenVertices.Contains(v) ||
				opts.ForbiddenEdges.Contains(arc.ID) {
				continue
			}
			nd := d + arc.Weight
			if bounded && nd > opts.Bound {
				continue
			}
			if nd < s.dist[v] {
				if math.IsInf(s.dist[v], 1) {
					s.touched = append(s.touched, v)
				}
				s.dist[v] = nd
				s.parentEdge[v] = arc.ID
				s.heap.Push(v, nd)
			}
		}
	}
	return nil
}

// Reached reports whether v was settled in the last run.
func (s *Solver) Reached(v int) bool { return s.settled[v] }

// Dist returns the shortest-path distance to v from the last run's source,
// or +Inf if v was not settled.
func (s *Solver) Dist(v int) float64 {
	if !s.settled[v] {
		return math.Inf(1)
	}
	return s.dist[v]
}

// PathTo returns the vertices of a shortest path from the last run's source
// to v (inclusive on both ends), or nil if v was not settled.
func (s *Solver) PathTo(g *graph.Graph, v int) []int {
	if !s.settled[v] {
		return nil
	}
	var rev []int
	for {
		rev = append(rev, v)
		eid := s.parentEdge[v]
		if eid < 0 {
			break
		}
		v = g.Edge(eid).Other(v)
	}
	reverse(rev)
	return rev
}

// PathEdgesTo returns the edge IDs of a shortest path to v in path order, or
// nil if v was not settled. A settled source yields an empty (nil) path.
func (s *Solver) PathEdgesTo(g *graph.Graph, v int) []int {
	if !s.settled[v] {
		return nil
	}
	var rev []int
	for {
		eid := s.parentEdge[v]
		if eid < 0 {
			break
		}
		rev = append(rev, eid)
		v = g.Edge(eid).Other(v)
	}
	reverse(rev)
	return rev
}

func (s *Solver) reset() {
	for _, v := range s.touched {
		s.dist[v] = math.Inf(1)
		s.parentEdge[v] = -1
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// Dist is a convenience wrapper returning the shortest-path distance between
// u and v (with early exit at v), or +Inf if unreachable under opts.
func Dist(g *graph.Graph, u, v int, opts Options) float64 {
	s := NewSolver(g.NumVertices())
	if err := s.RunTarget(g, u, v, opts); err != nil {
		return math.Inf(1)
	}
	return s.Dist(v)
}

// Path is a convenience wrapper returning a shortest u-v path as vertex and
// edge sequences. ok is false if v is unreachable under opts.
func Path(g *graph.Graph, u, v int, opts Options) (vertices, edges []int, ok bool) {
	s := NewSolver(g.NumVertices())
	if err := s.RunTarget(g, u, v, opts); err != nil {
		return nil, nil, false
	}
	if !s.Reached(v) {
		return nil, nil, false
	}
	return s.PathTo(g, v), s.PathEdgesTo(g, v), true
}

// AllDists returns the distance from src to every vertex (+Inf where
// unreachable) under opts.
func AllDists(g *graph.Graph, src int, opts Options) ([]float64, error) {
	s := NewSolver(g.NumVertices())
	if err := s.Run(g, src, opts); err != nil {
		return nil, err
	}
	out := make([]float64, g.NumVertices())
	for v := range out {
		out[v] = s.Dist(v)
	}
	return out, nil
}
