// Package sssp provides single-source and single-pair shortest paths on the
// repository's graph type, with the features the fault-tolerant machinery
// needs: forbidden-vertex and forbidden-edge masks (so callers never
// materialize G \ F), distance bounds with early exit, and a reusable Solver
// that performs no per-query allocation.
package sssp

import (
	"fmt"
	"math"
	"sync"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/pq"
)

// Options configures a shortest-path run. The zero value means: no forbidden
// elements and no distance bound.
type Options struct {
	// ForbiddenVertices are treated as deleted. The source must not be
	// forbidden. nil means none.
	ForbiddenVertices *bitset.Set
	// ForbiddenEdges are treated as deleted. nil means none.
	ForbiddenEdges *bitset.Set
	// Bound, if positive, stops the search once every remaining vertex is
	// known to be farther than Bound; vertices at distance > Bound are
	// reported unreached. Zero or negative means unbounded.
	Bound float64
	// ReachOnly (honored by RunReachBidi) declares that the caller needs
	// only the boolean reachability answer: on success the backward half is
	// not spliced into the forward parent chain, so Reached(target) is
	// exact but the path extractors are NOT valid for target. Witness
	// revalidation is the intended user — it re-checks a known fault set
	// with one bounded search and never extracts the detour, so it skips
	// the splice walk (and its touched-list growth) on every hit.
	// RunReach ignores the flag: the unidirectional search's parent chain
	// is complete the moment the target is contacted, so there is nothing
	// to skip.
	ReachOnly bool
}

// Solver runs Dijkstra repeatedly over graphs with at most Cap vertices,
// reusing all internal state between runs. It is not safe for concurrent
// use; create one Solver per goroutine.
type Solver struct {
	heap       *pq.Heap
	dist       []float64
	parentEdge []int
	settled    []bool
	touched    []int

	// b is the backward-search state of RunReachBidi, allocated lazily so
	// forward-only solvers stay at half the footprint.
	b *bidi
}

// NewSolver returns a Solver for graphs with up to n vertices.
func NewSolver(n int) *Solver {
	s := &Solver{
		heap:       pq.New(n),
		dist:       make([]float64, n),
		parentEdge: make([]int, n),
		settled:    make([]bool, n),
		touched:    make([]int, 0, n),
	}
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.parentEdge[i] = -1
	}
	return s
}

// Cap returns the maximum vertex count this solver supports.
func (s *Solver) Cap() int { return len(s.dist) }

// Ensure grows the solver to cover graphs with up to n vertices, preserving
// nothing from the last run. A no-op when the solver is already big enough.
func (s *Solver) Ensure(n int) {
	if n <= len(s.dist) {
		return
	}
	old := len(s.dist)
	dist := make([]float64, n)
	parentEdge := make([]int, n)
	settled := make([]bool, n)
	for i := old; i < n; i++ {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	// Old slots keep their reset invariants (touched-based reset restored
	// them after the last run), so a plain copy preserves them.
	copy(dist, s.dist)
	copy(parentEdge, s.parentEdge)
	copy(settled, s.settled)
	s.dist, s.parentEdge, s.settled = dist, parentEdge, settled
	s.heap.Grow(n)
	if s.b != nil {
		s.ensureBidi()
	}
}

// Run computes shortest paths from src to every reachable vertex of g under
// opts. Results are valid until the next Run/RunTarget/RunReach.
func (s *Solver) Run(g *graph.Graph, src int, opts Options) error {
	return s.run(g, src, -1, false, opts)
}

// RunTarget is Run with an early exit: the search stops as soon as target is
// settled, so other vertices may be reported unreached.
func (s *Solver) RunTarget(g *graph.Graph, src, target int, opts Options) error {
	if target < 0 || target >= g.NumVertices() {
		return fmt.Errorf("sssp: target %d out of range [0,%d)", target, g.NumVertices())
	}
	return s.run(g, src, target, false, opts)
}

// RunReach answers the bounded reachability question "is there a src-target
// path of weight <= opts.Bound?" as cheaply as possible: the search stops
// the moment ANY such path reaches the target, without waiting for the
// target to be settled at its exact shortest distance. After RunReach,
// Reached(target) is exact, and PathTo/PathEdgesTo return a valid path of
// weight <= opts.Bound — but Dist(target) and the path are upper bounds, not
// necessarily shortest. Every other vertex behaves as after RunTarget.
//
// This is the fault oracle's workhorse: its queries only need bounded
// reachability plus one within-bound path to branch on, and the target
// typically sits near the search frontier's edge — settling it exactly
// means exploring nearly the whole bound-radius ball first.
func (s *Solver) RunReach(g *graph.Graph, src, target int, opts Options) error {
	if target < 0 || target >= g.NumVertices() {
		return fmt.Errorf("sssp: target %d out of range [0,%d)", target, g.NumVertices())
	}
	return s.run(g, src, target, true, opts)
}

func (s *Solver) run(g *graph.Graph, src, target int, reach bool, opts Options) error {
	n := g.NumVertices()
	if n > len(s.dist) {
		return fmt.Errorf("sssp: graph has %d vertices, solver capacity is %d", n, len(s.dist))
	}
	if src < 0 || src >= n {
		return fmt.Errorf("sssp: source %d out of range [0,%d)", src, n)
	}
	if opts.ForbiddenVertices.Contains(src) {
		return fmt.Errorf("sssp: source %d is forbidden", src)
	}
	s.reset()

	// The forbidden masks are tested with direct word indexing rather than
	// bitset.Set.Contains: the relax loop is the hottest code in the
	// repository (every oracle query is a handful of these searches), and
	// fusing the word-level test removes a call, a nil check, and a bounds
	// check per arc.
	fvw := opts.ForbiddenVertices.Words()
	few := opts.ForbiddenEdges.Words()

	// An absent bound becomes +Inf so the loop tests plain float compares
	// instead of a flag plus a compare.
	bound := opts.Bound
	if bound <= 0 {
		bound = math.Inf(1)
	}
	dist, settled, parentEdge := s.dist, s.settled, s.parentEdge
	dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.Push(src, 0)

	for s.heap.Len() > 0 {
		u, d := s.heap.PopMin()
		if d > bound {
			break
		}
		settled[u] = true
		if u == target {
			break
		}
		arcs := g.Neighbors(u)
		for i := range arcs {
			arc := &arcs[i]
			v := arc.To
			if settled[v] {
				continue
			}
			if fvw != nil && fvw[uint(v)>>6]&(1<<(uint(v)&63)) != 0 {
				continue
			}
			if few != nil && few[uint(arc.ID)>>6]&(1<<(uint(arc.ID)&63)) != 0 {
				continue
			}
			nd := d + arc.Weight
			if nd > bound {
				continue
			}
			if nd < dist[v] {
				if math.IsInf(dist[v], 1) {
					s.touched = append(s.touched, v)
				}
				dist[v] = nd
				parentEdge[v] = arc.ID
				if reach && v == target {
					// A within-bound path to the target exists; that is all
					// a RunReach caller asked. Marking the target settled
					// makes Reached true and the parent chain (ending at
					// the settled vertex u) a valid <=bound path.
					settled[v] = true
					return nil
				}
				s.heap.Push(v, nd)
			}
		}
	}
	return nil
}

// Reached reports whether v was settled in the last run.
func (s *Solver) Reached(v int) bool { return s.settled[v] }

// Dist returns the shortest-path distance to v from the last run's source,
// or +Inf if v was not settled.
func (s *Solver) Dist(v int) float64 {
	if !s.settled[v] {
		return math.Inf(1)
	}
	return s.dist[v]
}

// PathTo returns the vertices of a shortest path from the last run's source
// to v (inclusive on both ends), or nil if v was not settled.
func (s *Solver) PathTo(g *graph.Graph, v int) []int {
	if !s.settled[v] {
		return nil
	}
	return s.AppendPathTo(g, v, nil)
}

// AppendPathTo appends the vertices of a shortest path to v (both endpoints
// inclusive, in path order) to dst and returns the extended slice. When v
// was not settled, dst is returned unchanged — callers that need to
// distinguish "unreached" from "source path" check Reached first. This is
// the zero-allocation variant of PathTo for hot loops that own a reusable
// buffer.
func (s *Solver) AppendPathTo(g *graph.Graph, v int, dst []int) []int {
	if !s.settled[v] {
		return dst
	}
	base := len(dst)
	for {
		dst = append(dst, v)
		eid := s.parentEdge[v]
		if eid < 0 {
			break
		}
		v = g.Edge(eid).Other(v)
	}
	reverse(dst[base:])
	return dst
}

// PathEdgesTo returns the edge IDs of a shortest path to v in path order, or
// nil if v was not settled. A settled source yields an empty (nil) path.
func (s *Solver) PathEdgesTo(g *graph.Graph, v int) []int {
	if !s.settled[v] {
		return nil
	}
	if s.parentEdge[v] < 0 {
		return nil
	}
	return s.AppendPathEdgesTo(g, v, nil)
}

// AppendPathEdgesTo appends the edge IDs of a shortest path to v (in path
// order) to dst and returns the extended slice; the zero-allocation variant
// of PathEdgesTo. When v was not settled, dst is returned unchanged.
func (s *Solver) AppendPathEdgesTo(g *graph.Graph, v int, dst []int) []int {
	if !s.settled[v] {
		return dst
	}
	base := len(dst)
	for {
		eid := s.parentEdge[v]
		if eid < 0 {
			break
		}
		dst = append(dst, eid)
		v = g.Edge(eid).Other(v)
	}
	reverse(dst[base:])
	return dst
}

func (s *Solver) reset() {
	for _, v := range s.touched {
		s.dist[v] = math.Inf(1)
		s.parentEdge[v] = -1
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// solverPool recycles Solvers for the convenience wrappers below. The
// wrappers used to construct a fresh Solver (four slices and a heap) per
// call, which made them quadratic-ish in hot loops — e.g. a verifier
// calling AllDists once per source. Pooled solvers grow monotonically via
// Ensure, so a pool hit for a smaller graph reuses the bigger allocation.
var solverPool = sync.Pool{New: func() any { return NewSolver(0) }}

// BorrowSolver returns a pooled Solver sized for at least n vertices.
// Callers that cannot keep a long-lived Solver of their own (one-shot
// helpers, per-request handlers) should pair it with ReturnSolver; hot loops
// are still better served by an explicitly reused Solver.
func BorrowSolver(n int) *Solver {
	s := solverPool.Get().(*Solver)
	s.Ensure(n)
	return s
}

// ReturnSolver puts a borrowed Solver back into the pool. The solver's last
// results become invalid immediately.
func ReturnSolver(s *Solver) { solverPool.Put(s) }

// Dist is a convenience wrapper returning the shortest-path distance between
// u and v (with early exit at v), or +Inf if unreachable under opts.
func Dist(g *graph.Graph, u, v int, opts Options) float64 {
	s := BorrowSolver(g.NumVertices())
	defer ReturnSolver(s)
	if err := s.RunTarget(g, u, v, opts); err != nil {
		return math.Inf(1)
	}
	return s.Dist(v)
}

// Path is a convenience wrapper returning a shortest u-v path as vertex and
// edge sequences. ok is false if v is unreachable under opts.
func Path(g *graph.Graph, u, v int, opts Options) (vertices, edges []int, ok bool) {
	s := BorrowSolver(g.NumVertices())
	defer ReturnSolver(s)
	if err := s.RunTarget(g, u, v, opts); err != nil {
		return nil, nil, false
	}
	if !s.Reached(v) {
		return nil, nil, false
	}
	return s.PathTo(g, v), s.PathEdgesTo(g, v), true
}

// AllDists returns the distance from src to every vertex (+Inf where
// unreachable) under opts.
func AllDists(g *graph.Graph, src int, opts Options) ([]float64, error) {
	s := BorrowSolver(g.NumVertices())
	defer ReturnSolver(s)
	if err := s.Run(g, src, opts); err != nil {
		return nil, err
	}
	out := make([]float64, g.NumVertices())
	for v := range out {
		out[v] = s.Dist(v)
	}
	return out, nil
}
