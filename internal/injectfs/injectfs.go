// Package injectfs provides a seeded, scriptable error-injecting filesystem
// implementing the store.FS seam. Chaos and degraded-mode tests use it to
// script ENOSPC, EIO, torn renames, and slow writes deterministically while
// all real I/O still lands in a temp directory through the OS.
//
// Faults come in two forms: probabilistic rates (seeded, so a failing run is
// reproducible from its seed) and forced bursts (ForceWriteFailures), which
// guarantee breaker-tripping sequences regardless of what the dice say.
package injectfs

import (
	"math/rand"
	"os"
	"sync"
	"syscall"
	"time"

	"github.com/ftspanner/ftspanner/internal/store"
)

// Rates configures probabilistic fault injection. Each value is a
// probability in [0,1] evaluated independently per operation.
type Rates struct {
	// ReadErr is the chance a ReadFile returns ReadErrno without reading.
	ReadErr float64
	// WriteErr is the chance a CreateTemp, Write, or Sync on a temp file
	// returns WriteErrno.
	WriteErr float64
	// TornRename is the chance a Rename writes a truncated copy of the
	// source to the destination, removes the source, and returns EIO —
	// the classic half-applied rename a crashing kernel can leave behind.
	TornRename float64
	// SlowWrite is the chance a Write stalls for SlowWriteDelay first.
	SlowWrite float64
}

// FS is an error-injecting store.FS wrapping the real OS filesystem.
// Safe for concurrent use.
type FS struct {
	osfs store.OSFS

	mu    sync.Mutex
	rng   *rand.Rand
	rates Rates
	// forcedWrites > 0 makes the next N write-path operations fail with
	// forcedErr unconditionally.
	forcedWrites int
	forcedErr    error

	readErrno      error
	writeErrno     error
	slowWriteDelay time.Duration

	// Injection counters, for tests asserting faults actually fired.
	injectedReads   int64
	injectedWrites  int64
	injectedRenames int64
}

// New returns an FS seeded with seed. Zero rates: pure pass-through until
// SetRates or ForceWriteFailures is called.
func New(seed int64) *FS {
	return &FS{
		rng:            rand.New(rand.NewSource(seed)),
		readErrno:      syscall.EIO,
		writeErrno:     syscall.EIO,
		slowWriteDelay: 2 * time.Millisecond,
	}
}

// SetRates replaces the probabilistic fault rates.
func (f *FS) SetRates(r Rates) {
	f.mu.Lock()
	f.rates = r
	f.mu.Unlock()
}

// SetErrnos overrides the errors injected on reads and writes (defaults:
// EIO for both). Pass e.g. syscall.ENOSPC as werr to script a full disk.
func (f *FS) SetErrnos(rerr, werr error) {
	f.mu.Lock()
	if rerr != nil {
		f.readErrno = rerr
	}
	if werr != nil {
		f.writeErrno = werr
	}
	f.mu.Unlock()
}

// ForceWriteFailures makes the next n write-path operations fail with err
// unconditionally, regardless of rates. Guarantees a breaker trip in tests.
func (f *FS) ForceWriteFailures(n int, err error) {
	f.mu.Lock()
	f.forcedWrites = n
	f.forcedErr = err
	f.mu.Unlock()
}

// Clear stops all injection: rates to zero, forced failures cancelled.
func (f *FS) Clear() {
	f.mu.Lock()
	f.rates = Rates{}
	f.forcedWrites = 0
	f.mu.Unlock()
}

// Injected reports how many faults of each kind have fired.
func (f *FS) Injected() (reads, writes, renames int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedReads, f.injectedWrites, f.injectedRenames
}

// roll evaluates probability p under the shared seeded rng.
func (f *FS) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng.Float64() < p
}

// writeFault decides whether a write-path operation fails, consuming one
// forced failure if armed. Caller must not hold f.mu.
func (f *FS) writeFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.forcedWrites > 0 {
		f.forcedWrites--
		f.injectedWrites++
		return &os.PathError{Op: "write", Path: "injectfs", Err: f.forcedErr}
	}
	if f.roll(f.rates.WriteErr) {
		f.injectedWrites++
		return &os.PathError{Op: "write", Path: "injectfs", Err: f.writeErrno}
	}
	return nil
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.osfs.MkdirAll(path, perm) }
func (f *FS) ReadDir(name string) ([]os.DirEntry, error)   { return f.osfs.ReadDir(name) }

func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	if f.roll(f.rates.ReadErr) {
		f.injectedReads++
		err := f.readErrno
		f.mu.Unlock()
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	f.mu.Unlock()
	return f.osfs.ReadFile(name)
}

func (f *FS) Remove(name string) error                  { return f.osfs.Remove(name) }
func (f *FS) Chtimes(name string, a, m time.Time) error { return f.osfs.Chtimes(name, a, m) }
func (f *FS) SyncDir(name string) error                 { return f.osfs.SyncDir(name) }

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	torn := f.roll(f.rates.TornRename)
	if torn {
		f.injectedRenames++
	}
	f.mu.Unlock()
	if !torn {
		return f.osfs.Rename(oldpath, newpath)
	}
	// Torn rename: leave a truncated copy at the destination, drop the
	// source, report failure. Readers must detect the partial record via
	// the codec's CRC and quarantine it, never serve it.
	if data, err := os.ReadFile(oldpath); err == nil && len(data) > 1 {
		_ = os.WriteFile(newpath, data[:len(data)/2], 0o644)
	}
	_ = os.Remove(oldpath)
	return &os.PathError{Op: "rename", Path: newpath, Err: syscall.EIO}
}

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.writeFault(); err != nil {
		return nil, err
	}
	inner, err := f.osfs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// file wraps a real temp file, injecting write/sync faults and slow writes.
type file struct {
	fs    *FS
	inner store.File
}

func (w *file) Name() string { return w.inner.Name() }
func (w *file) Close() error { return w.inner.Close() }
func (w *file) Sync() error {
	if err := w.fs.writeFault(); err != nil {
		return err
	}
	return w.inner.Sync()
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	slow := w.fs.roll(w.fs.rates.SlowWrite)
	delay := w.fs.slowWriteDelay
	w.fs.mu.Unlock()
	if slow {
		time.Sleep(delay)
	}
	if err := w.fs.writeFault(); err != nil {
		return 0, err
	}
	return w.inner.Write(p)
}

func (w *file) WriteString(s string) (int, error) { return w.Write([]byte(s)) }
