package ftspanner_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner"
)

// TestServerFacade drives the re-exported HTTP service end to end through
// the public facade only: build a job via the API and fetch its status.
func TestServerFacade(t *testing.T) {
	srv, err := ftspanner.NewServer(ftspanner.ServerConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(ftspanner.JobSpec{
		Generator: &ftspanner.GeneratorSpec{Name: "complete", N: 10},
		Stretch:   3,
		Faults:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Digest string `json:"graph_digest"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if want := ftspanner.GraphDigest(ftspanner.CompleteGraph(10)); st.Digest != want {
				t.Errorf("job digest %q, want %q", st.Digest, want)
			}
			return
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job ended %s", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
