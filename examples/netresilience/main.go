// Network resilience: a wireless sensor network in the unit square keeps
// only a sparse backbone of its links (a spanner) to save energy. Nodes
// fail. This example shows that the plain greedy backbone breaks under node
// failures while the vertex-fault-tolerant backbone keeps every surviving
// route within its stretch guarantee — the paper's motivating scenario
// ("spanners are often applied to systems whose parts are prone to sporadic
// failures").
//
// Run with: go run ./examples/netresilience
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"github.com/ftspanner/ftspanner"
)

const (
	numSensors = 140
	radioRange = 0.18
	stretch    = 3.0
	maxFailed  = 3
	seed       = 2026
	trials     = 400
)

func main() {
	g, pts := ftspanner.RandomGeometricGraph(numSensors, radioRange, seed)
	fmt.Printf("sensor network: %d nodes, %d radio links in range %.2f\n",
		g.NumVertices(), g.NumEdges(), radioRange)

	// Two backbones: plain greedy (f=0) and fault-tolerant greedy (f=3).
	plain, err := ftspanner.BuildVFT(g, stretch, 0)
	if err != nil {
		log.Fatal(err)
	}
	robust, err := ftspanner.BuildVFT(g, stretch, maxFailed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain backbone:  %d links (%.0f%%)\n", plain.Spanner.NumEdges(),
		100*float64(plain.Spanner.NumEdges())/float64(g.NumEdges()))
	fmt.Printf("robust backbone: %d links (%.0f%%), tolerates %d node failures\n",
		robust.Spanner.NumEdges(),
		100*float64(robust.Spanner.NumEdges())/float64(g.NumEdges()), maxFailed)

	// Failure drill: random sets of up to maxFailed sensors die; measure
	// the worst stretch each backbone still provides for surviving links.
	rng := rand.New(rand.NewSource(seed))
	var (
		plainWorst, robustWorst   float64
		plainBroken, robustBroken int
	)
	for trial := 0; trial < trials; trial++ {
		failed := rng.Perm(numSensors)[:1+rng.Intn(maxFailed)]
		s, err := ftspanner.WorstStretch(plain, failed)
		if err != nil {
			log.Fatal(err)
		}
		if math.IsInf(s, 1) || s > stretch+1e-9 {
			plainBroken++
		}
		if s > plainWorst {
			plainWorst = s
		}
		s, err = ftspanner.WorstStretch(robust, failed)
		if err != nil {
			log.Fatal(err)
		}
		if math.IsInf(s, 1) || s > stretch+1e-9 {
			robustBroken++
		}
		if s > robustWorst {
			robustWorst = s
		}
	}
	fmt.Printf("\nfailure drill (%d random failure scenarios, up to %d nodes each):\n", trials, maxFailed)
	fmt.Printf("  plain backbone:  broken in %d scenarios, worst stretch %s\n",
		plainBroken, stretchString(plainWorst))
	fmt.Printf("  robust backbone: broken in %d scenarios, worst stretch %s\n",
		robustBroken, stretchString(robustWorst))

	// Which sensors does the robust backbone lean on most? (Highest degree
	// in H — the hubs whose loss the extra edges insure against.)
	type hub struct{ node, degree int }
	hubs := make([]hub, 0, numSensors)
	for v := 0; v < numSensors; v++ {
		hubs = append(hubs, hub{node: v, degree: robust.Spanner.Degree(v)})
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].degree > hubs[j].degree })
	fmt.Println("\nbusiest backbone nodes (node: backbone-degree, position):")
	for _, h := range hubs[:5] {
		fmt.Printf("  %3d: %2d links at (%.2f, %.2f)\n", h.node, h.degree, pts[h.node].X, pts[h.node].Y)
	}

	if robustBroken > 0 {
		log.Fatal("robust backbone violated its guarantee — this should be impossible")
	}
	fmt.Println("\nthe robust backbone never exceeded its guarantee; the plain one did.")
}

func stretchString(s float64) string {
	if math.IsInf(s, 1) {
		return "INF (disconnected)"
	}
	return fmt.Sprintf("%.2f", s)
}
