// Paper walkthrough: executes the paper's proof of Theorem 1, step by step,
// on a concrete graph — the greedy run (Algorithm 1), the witness fault
// sets, the Lemma 3 blocking set, the Lemma 4 random subsample, and the
// final size accounting b(O(n/f), k+1) = Ω(m/f²). Every inequality the
// proof asserts is checked live.
//
// Run with: go run ./examples/paperwalk
package main

import (
	"fmt"
	"log"

	"github.com/ftspanner/ftspanner"
)

const (
	n       = 120
	m       = 1200
	stretch = 3 // the paper's k
	faults  = 2 // the paper's f
	seed    = 11
)

func main() {
	g, err := ftspanner.RandomGraph(n, m, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G: n=%d, m=%d. Running the %d-VFT %d-spanner greedy (Algorithm 1)...\n",
		g.NumVertices(), g.NumEdges(), faults, stretch)

	// Algorithm 1.
	res, err := ftspanner.BuildVFT(g, stretch, faults)
	if err != nil {
		log.Fatal(err)
	}
	h := res.Spanner
	fmt.Printf("H: %d edges. Theorem 1 claims |E(H)| = O(f²·b(n/f, k+1)).\n\n", h.NumEdges())

	// Lemma 3: B := {(x, e) : e ∈ E(H), x ∈ F_e} is a (k+1)-blocking set
	// with |B| <= f·|E(H)|.
	pairs, err := ftspanner.BlockingSet(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Lemma 3: extracted blocking set B from the run's witnesses:\n")
	fmt.Printf("  |B| = %d <= f·|E(H)| = %d  ✓ (ratio %.2f)\n",
		len(pairs), faults*h.NumEdges(), float64(len(pairs))/float64(faults*h.NumEdges()))
	if len(pairs) > faults*h.NumEdges() {
		log.Fatal("Lemma 3 size bound violated")
	}

	// Lemma 4: a random induced subgraph on ceil(n/2f) vertices, minus the
	// edges named by surviving blocking pairs, has girth > k+1 and Ω(m/f²)
	// edges in expectation.
	fmt.Printf("\nLemma 4: subsampling ⌈n/2f⌉ = %d vertices, %d trials:\n", (n+2*faults-1)/(2*faults), 10)
	sumEdges := 0
	for trial := 0; trial < 10; trial++ {
		sub, stats, err := ftspanner.Subsample(h, pairs, faults, seed+int64(trial))
		if err != nil {
			log.Fatal(err)
		}
		if stats.Girth <= stretch+1 {
			log.Fatalf("trial %d: girth %d <= k+1 — impossible if B is a blocking set", trial, stats.Girth)
		}
		sumEdges += stats.Edges
		if trial < 3 {
			fmt.Printf("  trial %d: %d nodes, %d edges survive (%d blocked-edge deletions), girth > %d ✓\n",
				trial, sub.NumVertices(), stats.Edges, stats.DeletedEdges, stretch+1)
		}
	}
	avg := float64(sumEdges) / 10
	bound := float64(h.NumEdges()) / float64(8*faults*faults)
	fmt.Printf("  average surviving edges %.1f vs the proof's m/(8f²) = %.1f  ✓\n", avg, bound)

	// The final step of the proof: the subsample is a girth > k+1 graph on
	// O(n/f) nodes with Ω(m/f²) edges, so b(O(n/f), k+1) = Ω(m/f²), i.e.
	// m = O(f²·b(n/f, k+1)). QED.
	fmt.Printf("\n=> b(O(n/f), k+1) >= %.1f edges exhibited, so |E(H)| = O(f²·b(n/f,k+1)).  (Theorem 1)\n", avg)

	// Epilogue: the guarantee that motivated it all, verified under fire.
	if err := ftspanner.CheckRandomFaultsParallel(res, 300, 0, seed); err != nil {
		log.Fatalf("fault-tolerance check failed: %v", err)
	}
	fmt.Println("\nepilogue: 300 random fault scenarios verified in parallel — no violations.")
}
