// Road network with link closures: a city grid with travel-time weights
// keeps a sparse "priority network" that must preserve travel times up to a
// factor 3 even when up to two road segments are closed (accidents, works).
// This is the edge-fault-tolerant (EFT) setting; the example compares the
// exact EFT greedy against the classical union-of-spanners baseline and
// demonstrates the closure guarantee.
//
// Run with: go run ./examples/roadgrid
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner"
)

const (
	rows, cols = 10, 12
	stretch    = 3.0
	closures   = 2
	seed       = 7
)

func main() {
	// A rows×cols downtown: junctions on a grid, and a direct road segment
	// between every pair of junctions at most two blocks apart (avenues,
	// diagonals, the occasional cut-through), weighted by distance and then
	// perturbed so no two segments tie.
	rng := rand.New(rand.NewSource(seed))
	g := ftspanner.NewGraph(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := -2; dr <= 2; dr++ {
				for dc := -2; dc <= 2; dc++ {
					nr, nc := r+dr, c+dc
					if (dr == 0 && dc == 0) || nr < 0 || nr >= rows || nc < 0 || nc >= cols {
						continue
					}
					u, v := r*cols+c, nr*cols+nc
					if u < v && !g.HasEdge(u, v) {
						travelTime := math.Hypot(float64(dr), float64(dc)) * (1 + 0.05*rng.Float64())
						g.MustAddEdge(u, v, travelTime)
					}
				}
			}
		}
	}
	fmt.Printf("road network: %d junctions, %d segments\n", g.NumVertices(), g.NumEdges())

	// The exact EFT greedy vs the union-of-(f+1)-spanners baseline.
	greedy, err := ftspanner.BuildEFT(g, stretch, closures)
	if err != nil {
		log.Fatal(err)
	}
	union, err := ftspanner.BuildUnionEFT(g, stretch, closures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("priority network (greedy EFT):    %d segments\n", greedy.Spanner.NumEdges())
	fmt.Printf("priority network (union baseline): %d segments (%.2fx the greedy)\n",
		union.Spanner.NumEdges(),
		float64(union.Spanner.NumEdges())/float64(greedy.Spanner.NumEdges()))

	// Closure drill on the greedy network: every single closure plus a
	// sample of double closures.
	fmt.Printf("\nclosure drill (all single closures + 300 random double closures):\n")
	worst := 0.0
	for e := 0; e < g.NumEdges(); e++ {
		s, err := ftspanner.WorstStretch(greedy, []int{e})
		if err != nil {
			log.Fatal(err)
		}
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("  single closures: worst surviving stretch %.3f (guarantee %.1f)\n", worst, stretch)
	for trial := 0; trial < 300; trial++ {
		f := rng.Perm(g.NumEdges())[:closures]
		s, err := ftspanner.WorstStretch(greedy, f)
		if err != nil {
			log.Fatal(err)
		}
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("  double closures: worst surviving stretch %.3f (guarantee %.1f)\n", worst, stretch)
	if worst > stretch {
		log.Fatal("guarantee violated — this should be impossible")
	}

	// The baseline tolerates closures too — both are correct; the greedy is
	// just smaller. Verify the union network on a random double closure.
	v, err := ftspanner.NewVerifierFor(g, union.Spanner, union.Kept)
	if err != nil {
		log.Fatal(err)
	}
	if err := v.CheckFaultSet(stretch, ftspanner.EdgeFaults, rng.Perm(g.NumEdges())[:closures]); err != nil {
		log.Fatalf("baseline violated its guarantee: %v", err)
	}
	fmt.Println("\nboth networks honor the closure guarantee; the greedy one is smaller.")
}
