// Quickstart: build a fault-tolerant spanner of a small complete graph,
// inspect it, and verify the guarantee exhaustively.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ftspanner/ftspanner"
)

func main() {
	// A complete graph on 12 vertices: 66 edges, unit weights.
	g := ftspanner.CompleteGraph(12)
	fmt.Printf("input graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build a 2-vertex-fault-tolerant 3-spanner: for ANY two failed
	// vertices, the surviving spanner preserves all surviving distances up
	// to a factor 3.
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-VFT 3-spanner: kept %d edges (%.0f%% of the input)\n",
		res.Spanner.NumEdges(), 100*float64(res.Spanner.NumEdges())/float64(g.NumEdges()))

	// Every kept edge carries the fault set that forced it in (the F_e of
	// the paper's Lemma 3). Show one.
	for edgeID, witness := range res.Witness {
		e := g.Edge(edgeID)
		fmt.Printf("example witness: edge (%d,%d) was forced by fault set %v\n", e.U, e.V, witness)
		break
	}

	// Check one specific failure scenario: vertices 3 and 7 go down.
	if err := ftspanner.CheckFaults(res, []int{3, 7}); err != nil {
		log.Fatalf("unexpected violation: %v", err)
	}
	stretch, err := ftspanner.WorstStretch(res, []int{3, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with vertices {3,7} failed, worst surviving stretch = %.2f (guarantee: 3.00)\n", stretch)

	// The instance is small enough to verify every fault set of size <= 2.
	if err := ftspanner.CheckAllFaults(res); err != nil {
		log.Fatalf("exhaustive verification failed: %v", err)
	}
	fmt.Println("exhaustively verified: all fault sets of size <= 2 are tolerated")

	// Compare with the non-fault-tolerant greedy (f = 0).
	plain, err := ftspanner.BuildVFT(g, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("for contrast, the f=0 greedy keeps only %d edges — fault tolerance costs %d extra edges\n",
		plain.Spanner.NumEdges(), res.Spanner.NumEdges()-plain.Spanner.NumEdges())
}
