// Optimality demonstration: the BDPW lower-bound graph cannot be
// compressed. The paper's Theorem 1 proves the fault-tolerant greedy keeps
// at most O(f²·b(n/f, k+1)) edges; this example builds the matching
// lower-bound instance (the blow-up of a high-girth graph) and shows the
// greedy — or ANY correct algorithm — must keep every single edge: each
// edge has a fault set that makes it irreplaceable.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"github.com/ftspanner/ftspanner"
)

const (
	baseSize = 14
	stretchK = 3 // k; base graph girth > k+1
	faults   = 4 // f; blow-up factor t = f/2
	seed     = 5
)

func main() {
	g := ftspanner.LowerBoundGraph(baseSize, stretchK, faults, seed)
	fmt.Printf("BDPW lower-bound graph: blow-up of a girth>%d graph on %d vertices with t=%d copies\n",
		stretchK+1, baseSize, faults/2)
	fmt.Printf("  -> %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Run the fault-tolerant greedy at the matching parameters.
	res, err := ftspanner.BuildVFT(g, stretchK, faults)
	if err != nil {
		log.Fatal(err)
	}
	kept := res.Spanner.NumEdges()
	fmt.Printf("\n%d-VFT %d-spanner of it: kept %d of %d edges (%.1f%%)\n",
		faults, stretchK, kept, g.NumEdges(), 100*float64(kept)/float64(g.NumEdges()))
	if kept != g.NumEdges() {
		log.Fatal("the greedy compressed the lower-bound graph — that contradicts the optimality argument")
	}

	// Show WHY for one edge: its witness fault set isolates the edge's
	// copy pair, so removing the edge breaks the guarantee.
	edgeID := res.Kept[len(res.Kept)/2]
	e := g.Edge(edgeID)
	witness := res.Witness[edgeID]
	fmt.Printf("\nwitness for edge (%d,%d): faulting %v leaves no detour of length <= %d\n",
		e.U, e.V, witness, stretchK)
	fmt.Println("(those are exactly the other copies of the edge's endpoints — the paper's argument)")

	// Counter-experiment: the same greedy on an equally-sized random graph
	// compresses heavily. Incompressibility is a property of the instance.
	rnd, err := ftspanner.RandomGraph(g.NumVertices(), g.NumEdges(), seed)
	if err != nil {
		log.Fatal(err)
	}
	rndRes, err := ftspanner.BuildVFT(rnd, stretchK, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor contrast, a random graph with the same n and m compresses to %.1f%%\n",
		100*float64(rndRes.Spanner.NumEdges())/float64(rnd.NumEdges()))

	// And the lower-bound graph admits a small *edge* blocking set (the
	// paper's concluding remark) — which is why the same proof technique
	// cannot give better EFT bounds.
	eftRes, err := ftspanner.BuildEFT(g, stretchK, faults)
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := ftspanner.EdgeBlockingSet(eftRes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEFT run on the same graph: kept %d edges, edge blocking set of %d pairs (budget f·|E(H)| = %d)\n",
		eftRes.Spanner.NumEdges(), len(pairs), faults*eftRes.Spanner.NumEdges())
}
