package ftspanner_test

import (
	"fmt"

	"github.com/ftspanner/ftspanner"
)

// Example builds a fault-tolerant spanner of a small complete graph and
// verifies the guarantee exhaustively.
func Example() {
	g := ftspanner.CompleteGraph(10)
	res, err := ftspanner.BuildVFT(g, 3, 1) // 1-vertex-fault-tolerant 3-spanner
	if err != nil {
		panic(err)
	}
	fmt.Println("input edges:", g.NumEdges())
	fmt.Println("spanner edges:", res.Spanner.NumEdges())
	fmt.Println("tolerates any single failure:", ftspanner.CheckAllFaults(res) == nil)
	// Output:
	// input edges: 45
	// spanner edges: 17
	// tolerates any single failure: true
}

// ExampleBlockingSet extracts the paper's Lemma 3 blocking set from a run.
func ExampleBlockingSet() {
	g := ftspanner.CompleteGraph(8)
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		panic(err)
	}
	pairs, err := ftspanner.BlockingSet(res)
	if err != nil {
		panic(err)
	}
	fmt.Println("|B| <= f*|E(H)|:", len(pairs) <= res.Faults*res.Spanner.NumEdges())
	// Output:
	// |B| <= f*|E(H)|: true
}

// ExampleWorstStretch measures the exact surviving stretch under a
// specific failure scenario.
func ExampleWorstStretch() {
	g := ftspanner.CompleteGraph(9)
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		panic(err)
	}
	s, err := ftspanner.WorstStretch(res, []int{2, 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("worst stretch with vertices {2,5} down: %.0f (guarantee 3)\n", s)
	// Output:
	// worst stretch with vertices {2,5} down: 2 (guarantee 3)
}
