// End-to-end integration tests crossing every layer of the repository:
// generators -> builders -> serialization -> verification -> proof
// machinery, on workload families the unit tests do not combine.
package ftspanner_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/blocking"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/mst"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// TestSoakPipeline drives the full pipeline over a matrix of workload
// families, modes and parameters. Bounded to stay a few seconds; run with
// -short to skip.
func TestSoakPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	workloads := []struct {
		name  string
		build func() *ftspanner.Graph
	}{
		{name: "gnm", build: func() *ftspanner.Graph {
			g, err := gen.ConnectedGNM(40, 300, rng)
			if err != nil {
				t.Fatal(err)
			}
			w, err := gen.RandomizeWeights(g, 1, 2, rng)
			if err != nil {
				t.Fatal(err)
			}
			return w
		}},
		{name: "geometric", build: func() *ftspanner.Graph {
			g, _ := gen.RandomGeometric(45, 0.35, rng)
			return g
		}},
		{name: "barabasi-albert", build: func() *ftspanner.Graph {
			g, err := gen.BarabasiAlbert(40, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{name: "watts-strogatz", build: func() *ftspanner.Graph {
			g, err := gen.WattsStrogatz(40, 6, 0.2, rng)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{name: "hypercube", build: func() *ftspanner.Graph {
			g, err := gen.Hypercube(6)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			g := w.build()
			for _, mode := range []ftspanner.Mode{ftspanner.VertexFaults, ftspanner.EdgeFaults} {
				for _, f := range []int{1, 2} {
					res, err := ftspanner.Build(g, ftspanner.Options{Stretch: 3, Faults: f, Mode: mode})
					if err != nil {
						t.Fatalf("%v f=%d: %v", mode, f, err)
					}
					// Serialization round trip of the spanner.
					var buf bytes.Buffer
					if err := res.Spanner.Encode(&buf); err != nil {
						t.Fatal(err)
					}
					if _, err := ftspanner.DecodeGraph(&buf); err != nil {
						t.Fatal(err)
					}
					// Parallel randomized verification.
					if err := ftspanner.CheckRandomFaultsParallel(res, 40, 4, 5); err != nil {
						t.Errorf("%s %v f=%d: %v", w.name, mode, f, err)
					}
					// Proof machinery on VFT runs.
					if mode == ftspanner.VertexFaults {
						pairs, err := ftspanner.BlockingSet(res)
						if err != nil {
							t.Fatal(err)
						}
						if len(pairs) > f*res.Spanner.NumEdges() {
							t.Errorf("%s f=%d: blocking set over budget", w.name, f)
						}
						if err := blocking.VerifyVertexBlocking(res.Spanner, pairs, 4); err != nil {
							t.Errorf("%s f=%d: %v", w.name, f, err)
						}
					}
					// MSF containment.
					msf, _ := mst.Kruskal(g)
					for _, id := range msf {
						if !res.KeptSet.Contains(id) {
							t.Errorf("%s %v f=%d: MSF edge %d missing from spanner", w.name, mode, f, id)
						}
					}
					// Conservative variant agrees on correctness.
					cons, err := core.GreedyConservative(g, core.Options{Stretch: 3, Faults: f, Mode: faultMode(mode)})
					if err != nil {
						t.Fatal(err)
					}
					inst, err := verify.NewInstance(g, cons.Spanner, cons.Kept)
					if err != nil {
						t.Fatal(err)
					}
					if err := inst.RandomCheck(3, faultMode(mode), f, 30, rng); err != nil {
						t.Errorf("%s %v f=%d conservative: %v", w.name, mode, f, err)
					}
					if cons.Spanner.NumEdges() < res.Spanner.NumEdges() {
						t.Errorf("%s %v f=%d: conservative smaller than exact", w.name, mode, f)
					}
				}
			}
		})
	}
}

// faultMode converts the facade alias to the internal type (they are the
// same type; this keeps the call sites explicit).
func faultMode(m ftspanner.Mode) fault.Mode { return m }
