// Package ftspanner builds fault-tolerant graph spanners.
//
// It implements the fault-tolerant greedy algorithm of Bodwin and Patel ("A
// Trivial Yet Optimal Solution to Vertex Fault Tolerant Spanners", PODC
// 2019): scan edges by increasing weight and keep an edge iff some set of at
// most f vertex (or edge) faults would otherwise leave it stretched beyond
// k. The output H satisfies, for every fault set F with |F| <= f, that H\F
// is a k-spanner of G\F — with existentially optimal size
// O(n^{1+1/k'} f^{1-1/k'}) for stretch k = 2k'-1 (vertex faults).
//
// The package is a facade over the internal implementation: it re-exports
// the graph type, the builders, fault-tolerance verification, the paper's
// blocking-set machinery, and a curated set of graph generators, so
// downstream users never import internal paths.
//
// Quick start:
//
//	g := ftspanner.NewGraph(4)
//	g.MustAddEdge(0, 1, 1)
//	// ... more edges ...
//	res, err := ftspanner.BuildVFT(g, 3, 2) // 2-fault-tolerant 3-spanner
//	if err != nil { ... }
//	fmt.Println(res.Spanner.NumEdges())
package ftspanner

import (
	"io"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/baseline"
	"github.com/ftspanner/ftspanner/internal/blocking"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/service"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// Core types, re-exported from the implementation packages.
type (
	// Graph is a weighted undirected simple graph with stable edge IDs.
	Graph = graph.Graph
	// Edge is one weighted edge of a Graph.
	Edge = graph.Edge
	// Mode selects vertex or edge faults.
	Mode = fault.Mode
	// Options configures Build.
	Options = core.Options
	// OracleOptions tunes the fault-set search inside the greedy.
	OracleOptions = fault.Options
	// Result is the output of a build: the spanner, the kept-edge mapping,
	// per-edge witness fault sets and instrumentation.
	Result = core.Result
	// Stats carries instrumentation counters of a build.
	Stats = core.Stats
	// BlockingPair is a (vertex, edge) pair of a blocking set (Definition 3).
	BlockingPair = blocking.Pair
	// BlockingEdgePair is an (edge, edge) pair of an edge blocking set.
	BlockingEdgePair = blocking.EdgePair
	// SubsampleStats reports one run of the Lemma 4 subsampling procedure.
	SubsampleStats = blocking.SubsampleStats
	// Verifier checks fault-tolerance properties of a (G, H) instance.
	Verifier = verify.Instance
	// Violation describes a broken spanner guarantee found by a Verifier.
	Violation = verify.Violation
	// Point is a 2D coordinate reported by the geometric generator.
	Point = gen.Point
)

// Fault modes.
const (
	// VertexFaults builds/checks vertex fault tolerance (VFT).
	VertexFaults = fault.Vertices
	// EdgeFaults builds/checks edge fault tolerance (EFT).
	EdgeFaults = fault.Edges
)

// Serving types, re-exported for the ftserve HTTP service.
type (
	// ServerConfig sizes a spanner-build Server (workers, queues, caches,
	// durable store).
	ServerConfig = service.Config
	// Server is the ftserve HTTP job service: an http.Handler with weighted
	// priority job queues, a bounded worker pool, and a two-tier (memory
	// LRU + durable on-disk store) result cache.
	Server = service.Server
	// JobSpec describes one build job submitted to a Server.
	JobSpec = service.JobSpec
	// GeneratorSpec names a server-side graph generator in a JobSpec.
	GeneratorSpec = service.GeneratorSpec
	// JobPriority is a job's scheduling class in a JobSpec.
	JobPriority = service.Priority
	// CacheKey identifies a build result in a Server's cache: the input
	// graph's content digest plus every output-relevant parameter.
	CacheKey = service.CacheKey
	// MetricsSnapshot is a Server's GET /metrics payload.
	MetricsSnapshot = service.MetricsSnapshot
	// SessionSpec opens a long-lived graph session on a Server
	// (POST /v1/sessions): a mutable graph whose spanner is maintained
	// incrementally across delta batches.
	SessionSpec = service.SessionSpec
	// SessionEvent is one entry in a session's NDJSON lifecycle stream
	// (GET /v1/sessions/{id}/events).
	SessionEvent = service.SessionEvent
)

// Incremental maintenance types, re-exported from the core engine. An
// Incremental engine holds a mutable graph plus its fault-tolerant greedy
// spanner and applies delta batches (ApplyBatch) by re-scanning only the
// disturbed weight suffix, falling back to a full rebuild when a batch
// dirties too much of the scan order. The maintained kept set is always
// identical to a from-scratch greedy build of the current graph.
type (
	// MutableGraph is a Graph supporting edge insertion and tombstoned
	// deletion, the substrate of an Incremental engine and a session.
	MutableGraph = graph.Mutable
	// IncrementalOptions configures an Incremental engine.
	IncrementalOptions = core.IncrementalOptions
	// Incremental maintains a fault-tolerant greedy spanner under edge
	// insertions and deletions.
	Incremental = core.Incremental
	// Delta is one mutation in a Batch.
	Delta = core.Delta
	// Batch is an atomic group of deltas applied by Incremental.ApplyBatch.
	Batch = core.Batch
	// BatchResult reports the spanner membership changes and work counters
	// of one applied Batch.
	BatchResult = core.BatchResult
)

// Delta operations for Batch.Deltas.
const (
	// DeltaInsert adds a new edge.
	DeltaInsert = core.DeltaInsert
	// DeltaDelete removes a live edge.
	DeltaDelete = core.DeltaDelete
	// DeltaFaultVertex removes every live edge incident to a vertex.
	DeltaFaultVertex = core.DeltaFaultVertex
)

// Job scheduling classes for JobSpec.Priority. Under a saturated worker
// pool, queued jobs are dequeued weighted-fair at high:normal:low = 4:2:1,
// and each class has its own admission cap (backpressure via 429 +
// Retry-After) — see ServerConfig.QueueCaps.
const (
	PriorityHigh   = service.PriorityHigh
	PriorityNormal = service.PriorityNormal
	PriorityLow    = service.PriorityLow
)

// NewGraph returns an empty graph on n isolated vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// DecodeGraph parses a graph from the text format written by Graph.Encode.
func DecodeGraph(r io.Reader) (*Graph, error) { return graph.Decode(r) }

// GraphDigest returns g's stable SHA-256 content digest (Graph.Digest):
// the cache and persistence key for results computed from g.
func GraphDigest(g *Graph) string { return g.Digest() }

// NewServer returns a spanner-build HTTP service with its worker pool
// already running; release it with Close. With ServerConfig.StoreDir set it
// opens the durable result store first (results persist across restarts)
// and reports an error if the directory is unusable. Serve it with
// net/http:
//
//	srv, err := ftspanner.NewServer(ftspanner.ServerConfig{Workers: 8, StoreDir: "/var/lib/ftserve"})
//	if err != nil { ... }
//	defer srv.Close()
//	http.ListenAndServe(":8437", srv)
func NewServer(cfg ServerConfig) (*Server, error) { return service.New(cfg) }

// NewIncremental returns an incremental maintenance engine over initial
// (nil for an empty graph) with its spanner already built. Apply mutations
// with ApplyBatch; read the current graph and kept edge set with Current.
func NewIncremental(initial *Graph, opts IncrementalOptions) (*Incremental, error) {
	return core.NewIncremental(initial, opts)
}

// Build runs the fault-tolerant greedy algorithm with full control over the
// options. Most callers use BuildVFT or BuildEFT. With Options.Parallelism
// > 1 the edge scan speculates over same-weight batches on a worker pool,
// and Options.Pipeline overlaps each batch's commit pass with the next
// batches' speculation; the kept-edge set is provably identical to the
// sequential scan's at every setting.
func Build(g *Graph, opts Options) (*Result, error) { return core.Greedy(g, opts) }

// BuildVFT builds an f-vertex-fault-tolerant stretch-spanner of g — the
// paper's headline setting.
func BuildVFT(g *Graph, stretch float64, f int) (*Result, error) {
	return core.GreedyVFT(g, stretch, f)
}

// BuildEFT builds an f-edge-fault-tolerant stretch-spanner of g.
func BuildEFT(g *Graph, stretch float64, f int) (*Result, error) {
	return core.GreedyEFT(g, stretch, f)
}

// BuildConservative runs the polynomial-time conservative greedy: an edge
// is dropped only when f+1 pairwise disjoint within-stretch detours certify
// that no fault set can isolate it. The output is always a valid
// fault-tolerant spanner, typically (though not provably — the two scans
// evolve different intermediate spanners) no sparser than the exact
// greedy's, and each edge costs O(f) shortest-path runs instead of
// exponential-in-f search — the trade-off of the paper's closing open
// question (experiment E11).
func BuildConservative(g *Graph, opts Options) (*Result, error) {
	return core.GreedyConservative(g, opts)
}

// BaselineResult is the output of a baseline construction: the spanner and
// the input edge IDs it keeps.
type BaselineResult = baseline.Result

// BuildUnionEFT builds an f-edge-fault-tolerant stretch-spanner as the
// union of f+1 edge-disjoint greedy spanners — the provably correct folk
// baseline the greedy EFT construction is compared against (experiment E3).
func BuildUnionEFT(g *Graph, stretch float64, f int) (*BaselineResult, error) {
	return baseline.UnionEFT(g, stretch, f)
}

// BuildSamplingVFT builds an f-vertex-fault-tolerant (2k-1)-spanner in the
// Dinitz–Krauthgamer style: unions of fast spanners over random vertex
// subsamples. Polynomial in f where the exact greedy is exponential, at the
// price of a larger spanner.
func BuildSamplingVFT(g *Graph, k, f int, seed int64) (*BaselineResult, error) {
	return baseline.SamplingVFT(g, k, f, baseline.SamplingVFTOptions{}, rand.New(rand.NewSource(seed)))
}

// NewVerifier wraps a build result for fault-tolerance checking.
func NewVerifier(res *Result) (*Verifier, error) {
	return verify.NewInstance(res.Input, res.Spanner, res.Kept)
}

// NewVerifierFor wraps an arbitrary (G, H, kept-edge-IDs) triple — e.g. a
// BaselineResult's spanner — for fault-tolerance checking.
func NewVerifierFor(g, h *Graph, kept []int) (*Verifier, error) {
	return verify.NewInstance(g, h, kept)
}

// CheckFaults verifies that the result tolerates one specific fault set
// (vertex IDs for VFT results, input edge IDs for EFT results) at the
// result's own stretch. It returns nil if the guarantee holds and a
// *Violation describing the broken pair otherwise.
func CheckFaults(res *Result, faults []int) error {
	v, err := NewVerifier(res)
	if err != nil {
		return err
	}
	return v.CheckFaultSet(res.Stretch, res.Mode, faults)
}

// CheckAllFaults exhaustively verifies the result against every fault set
// of size at most its f. Only feasible for small instances.
func CheckAllFaults(res *Result) error {
	v, err := NewVerifier(res)
	if err != nil {
		return err
	}
	return v.ExhaustiveCheck(res.Stretch, res.Mode, res.Faults)
}

// CheckAllFaultsParallel is CheckAllFaults spread over a worker pool
// (workers < 1 selects GOMAXPROCS), reporting the same earliest violation
// the sequential check would.
func CheckAllFaultsParallel(res *Result, workers int) error {
	v, err := NewVerifier(res)
	if err != nil {
		return err
	}
	return v.ParallelExhaustiveCheck(res.Stretch, res.Mode, res.Faults, workers)
}

// CheckRandomFaults verifies the result against trials random fault sets
// (sizes uniform in [0, f]) drawn from the given seed.
func CheckRandomFaults(res *Result, trials int, seed int64) error {
	v, err := NewVerifier(res)
	if err != nil {
		return err
	}
	return v.RandomCheck(res.Stretch, res.Mode, res.Faults, trials, rand.New(rand.NewSource(seed)))
}

// CheckRandomFaultsParallel is CheckRandomFaults distributed over a worker
// pool (workers < 1 selects GOMAXPROCS). Deterministic under seed.
func CheckRandomFaultsParallel(res *Result, trials, workers int, seed int64) error {
	v, err := NewVerifier(res)
	if err != nil {
		return err
	}
	return v.ParallelRandomCheck(res.Stretch, res.Mode, res.Faults, trials, workers, rand.New(rand.NewSource(seed)))
}

// WorstStretch returns the exact stretch of the result's spanner under one
// fault set (+Inf if some surviving edge is disconnected).
func WorstStretch(res *Result, faults []int) (float64, error) {
	v, err := NewVerifier(res)
	if err != nil {
		return 0, err
	}
	return v.WorstEdgeStretch(res.Mode, faults)
}

// BlockingSet extracts the paper's Lemma 3 blocking set from a VFT result;
// its pairs reference the spanner's own edge IDs and its size is at most
// f·|E(H)|.
func BlockingSet(res *Result) ([]BlockingPair, error) {
	return blocking.FromResult(res)
}

// EdgeBlockingSet extracts the concluding remark's edge blocking set from
// an EFT result.
func EdgeBlockingSet(res *Result) ([]BlockingEdgePair, error) {
	return blocking.EdgePairsFromResult(res)
}

// Subsample runs the Lemma 4 procedure on a spanner with its blocking set
// and parameter f, using the given seed: the returned subgraph has
// ⌈n/(2f)⌉ vertices, girth above the blocking parameter, and Ω(m/f²)
// expected edges.
func Subsample(h *Graph, pairs []BlockingPair, f int, seed int64) (*Graph, *SubsampleStats, error) {
	return blocking.Subsample(h, pairs, f, rand.New(rand.NewSource(seed)))
}

// Curated generators (the full set lives in internal/gen).

// CompleteGraph returns K_n with unit weights.
func CompleteGraph(n int) *Graph { return gen.Complete(n) }

// GridGraph returns the rows×cols unit-weight grid.
func GridGraph(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// RandomGraph returns a connected random graph with n vertices and m >= n-1
// edges, deterministic under seed.
func RandomGraph(n, m int, seed int64) (*Graph, error) {
	return gen.ConnectedGNM(n, m, rand.New(rand.NewSource(seed)))
}

// RandomGeometricGraph scatters n points in the unit square and connects
// pairs within radius, weighted by Euclidean distance. It returns the graph
// and the coordinates.
func RandomGeometricGraph(n int, radius float64, seed int64) (*Graph, []Point) {
	return gen.RandomGeometric(n, radius, rand.New(rand.NewSource(seed)))
}

// RandomizeWeights returns a copy of g with weights drawn uniformly from
// [lo, hi), preserving topology and edge IDs.
func RandomizeWeights(g *Graph, lo, hi float64, seed int64) (*Graph, error) {
	return gen.RandomizeWeights(g, lo, hi, rand.New(rand.NewSource(seed)))
}

// QuantizeWeights returns a copy of g with weights drawn uniformly from the
// integer levels {1, ..., levels}, preserving topology and edge IDs. Tied
// weights form the same-weight batches that Options.Parallelism speculates
// over.
func QuantizeWeights(g *Graph, levels int, seed int64) (*Graph, error) {
	return gen.QuantizeWeights(g, levels, rand.New(rand.NewSource(seed)))
}

// LowerBoundGraph returns the BDPW blow-up on which every edge is forced
// into any f-VFT k-spanner — the witness that the paper's size bound is
// optimal.
func LowerBoundGraph(nBase, k, f int, seed int64) *Graph {
	return gen.BDPWLowerBound(nBase, k, f, rand.New(rand.NewSource(seed)))
}
