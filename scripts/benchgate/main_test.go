package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rpt(entries ...benchEntry) *report { return &report{CPUs: 1, Benchmarks: entries} }

func TestCompareGate(t *testing.T) {
	base := rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1000},
		benchEntry{Name: "LargeVFTf2Par4", NsPerOp: 900},
		benchEntry{Name: "BuildVFTf1", NsPerOp: 100}, // not gated: wrong prefix
	)

	// Within budget: 20% slower passes a 25% gate.
	fails, lines := compare(base, rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1200},
		benchEntry{Name: "LargeVFTf2Par4", NsPerOp: 900},
	), "Large", 0.25)
	if len(fails) != 0 {
		t.Fatalf("within-budget run failed: %v", fails)
	}
	if len(lines) != 2 {
		t.Fatalf("compared %d cases, want 2: %v", len(lines), lines)
	}

	// Over budget: 30% slower fails.
	fails, _ = compare(base, rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1300},
		benchEntry{Name: "LargeVFTf2Par4", NsPerOp: 900},
	), "Large", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "LargeVFTf2Seq") {
		t.Fatalf("over-budget regression not caught: %v", fails)
	}

	// A gated case vanishing from the current run fails.
	fails, _ = compare(base, rpt(benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1000}), "Large", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("missing case not caught: %v", fails)
	}

	// Getting faster never fails, and the ungated prefix is ignored even
	// when it regresses wildly.
	fails, _ = compare(base, rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 500},
		benchEntry{Name: "LargeVFTf2Par4", NsPerOp: 450},
		benchEntry{Name: "BuildVFTf1", NsPerOp: 10000},
	), "Large", 0.25)
	if len(fails) != 0 {
		t.Fatalf("improvement failed the gate: %v", fails)
	}

	// An empty gate set is a configuration error, not a silent pass.
	fails, _ = compare(rpt(), rpt(), "Large", 0.25)
	if len(fails) != 1 {
		t.Fatalf("empty baseline passed: %v", fails)
	}
}

func TestCompareMultiPrefix(t *testing.T) {
	base := rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1000},
		benchEntry{Name: "SessionSmallDelta", NsPerOp: 100},
		benchEntry{Name: "BuildVFTf1", NsPerOp: 100}, // not gated by either prefix
	)

	// Both prefixes gate: a Session regression fails a Large,Session gate.
	fails, lines := compare(base, rpt(
		benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1000},
		benchEntry{Name: "SessionSmallDelta", NsPerOp: 200},
		benchEntry{Name: "BuildVFTf1", NsPerOp: 10000},
	), "Large,Session", 0.25)
	if len(lines) != 2 {
		t.Fatalf("compared %d cases, want 2: %v", len(lines), lines)
	}
	if len(fails) != 1 || !strings.Contains(fails[0], "SessionSmallDelta") {
		t.Fatalf("session regression not caught under multi-prefix gate: %v", fails)
	}

	// A missing Session case fails too.
	fails, _ = compare(base, rpt(benchEntry{Name: "LargeVFTf2Seq", NsPerOp: 1000}), "Large,Session", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "SessionSmallDelta") {
		t.Fatalf("missing session case not caught: %v", fails)
	}
}

func TestLoadReportBothShapes(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.json")
	os.WriteFile(raw, []byte(`{"cpus":1,"benchmarks":[{"name":"LargeX","ns_per_op":42}]}`), 0o644)
	traj := filepath.Join(dir, "traj.json")
	os.WriteFile(traj, []byte(`{"pr":6,"after":{"cpus":1,"benchmarks":[{"name":"LargeX","ns_per_op":41}]}}`), 0o644)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"pr":6}`), 0o644)

	r, err := loadReport(raw)
	if err != nil || len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 42 {
		t.Fatalf("raw shape: %v %+v", err, r)
	}
	r, err = loadReport(traj)
	if err != nil || len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 41 {
		t.Fatalf("trajectory shape: %v %+v", err, r)
	}
	if _, err := loadReport(bad); err == nil {
		t.Fatal("shapeless document accepted")
	}
}
