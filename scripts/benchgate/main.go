// Command benchgate fails CI when a benchmark run regresses against the
// repository's recorded perf trajectory: it compares ns/op of the Large*
// cases (the stable, long-running fixtures — the small Build* cases are too
// noisy to gate on) between a baseline JSON and a freshly generated one, and
// exits non-zero when any gated case slowed down by more than the threshold.
//
// Usage:
//
//	benchgate -baseline BENCH_PR10.json -current bench.json [-threshold 0.25] [-prefix Large,Session]
//
// Both files may be either a raw `ftbench -benchjson` report (top-level
// "benchmarks" array) or a recorded BENCH_PR<n>.json trajectory document
// (whose "after" object holds the report) — the gate accepts both, so the
// committed trajectory doubles as the baseline without reshaping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchEntry is the slice of a component benchmark the gate reads.
type benchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// report mirrors the parts of ftbench's -benchjson document the gate needs.
type report struct {
	CPUs       int          `json:"cpus"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// trajectory is the committed BENCH_PR<n>.json shape: the current run is
// recorded under "after" (and the previous one under "before").
type trajectory struct {
	After *report `json:"after"`
}

// loadReport reads path as either a raw report or a trajectory document.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err == nil && len(r.Benchmarks) > 0 {
		return &r, nil
	}
	var t trajectory
	if err := json.Unmarshal(data, &t); err == nil && t.After != nil && len(t.After.Benchmarks) > 0 {
		return t.After, nil
	}
	return nil, fmt.Errorf("%s: neither a benchjson report nor a trajectory with an \"after\" section", path)
}

// nsByName indexes a report's gated cases by name. prefix is a
// comma-separated list; a case is gated when any element matches.
func nsByName(r *report, prefix string) map[string]float64 {
	prefixes := strings.Split(prefix, ",")
	m := make(map[string]float64)
	for _, b := range r.Benchmarks {
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(b.Name, p) && b.NsPerOp > 0 {
				m[b.Name] = b.NsPerOp
				break
			}
		}
	}
	return m
}

// compare returns one failure line per gated case that regressed beyond
// threshold (0.25 = 25% slower) or went missing from the current run, and
// one info line per compared case.
func compare(base, cur *report, prefix string, threshold float64) (failures, lines []string) {
	bm := nsByName(base, prefix)
	cm := nsByName(cur, prefix)
	names := make([]string, 0, len(bm))
	for name := range bm {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := bm[name]
		c, ok := cm[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current run", name))
			continue
		}
		delta := (c - b) / b
		lines = append(lines, fmt.Sprintf("%-24s %14.0f -> %14.0f ns/op  (%+.1f%%)", name, b, c, 100*delta))
		if delta > threshold {
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op, +%.1f%% exceeds the %.0f%% budget",
				name, b, c, 100*delta, 100*threshold))
		}
	}
	if len(names) == 0 {
		failures = append(failures, fmt.Sprintf("baseline has no %q-prefixed cases to gate on", prefix))
	}
	return failures, lines
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (BENCH_PR<n>.json or raw benchjson)")
	current := flag.String("current", "", "freshly generated benchjson report")
	threshold := flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression (0.25 = 25%)")
	prefix := flag.String("prefix", "Large", "gate only benchmarks whose name starts with one of these comma-separated prefixes")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are both required")
		os.Exit(2)
	}
	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadReport(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if base.CPUs != 0 && cur.CPUs != 0 && base.CPUs != cur.CPUs {
		// Different machine shapes make ns/op incomparable for parallel
		// cases; say so but still gate (the sequential Large case remains
		// meaningful).
		fmt.Printf("benchgate: warning: baseline ran on %d CPUs, current on %d\n", base.CPUs, cur.CPUs)
	}
	failures, lines := compare(base, cur, *prefix, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (%d cases within the %.0f%% budget)\n", len(lines), 100**threshold)
}
